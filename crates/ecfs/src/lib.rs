//! ECFS — the erasure-coded cluster file system substrate.
//!
//! Rebuilds the paper's self-developed ECFS (§4): a metadata server
//! ([`Mds`]), object storage devices ([`Osd`], one per node, each with one
//! simulated SSD or HDD), and closed-loop clients replaying block traces.
//! Data is striped RS(k, m) across the cluster with per-stripe rotation.
//!
//! The *update scheme* — the thing the paper compares — is pluggable via
//! the [`UpdateScheme`] trait. Baselines (FO/FL/PL/PLR/PARIX/CoRD) live in
//! `tsue-schemes`; TSUE itself lives in `tsue-core`. ECFS guarantees every
//! scheme sees identical request streams, device models, and network
//! accounting, so comparisons measure the scheme and nothing else.
//!
//! # Simulation world
//!
//! [`Cluster`] is the DES world type. It splits into [`ClusterCore`]
//! (devices, network, MDS, clients, metrics) and the per-OSD scheme slots,
//! so a scheme borrowed for a callback can still reach everything else.
//! Schemes on different OSDs interact only through scheduled messages,
//! mirroring the real system's RPCs and keeping borrows disjoint.

#![warn(missing_docs)]

pub mod builder;
pub mod client;
pub mod journal;
pub mod logregion;
pub mod mds;
pub mod metrics;
pub mod osd;
pub mod placement;
pub mod rangemap;
pub mod recovery;
pub mod registry;
pub mod replica;
pub mod resync;
pub mod scheme;
pub mod scrub;
pub mod shard;
pub mod verify;

pub use builder::ClusterBuilder;
pub use client::{client_issue, start_clients, ClientState};
pub use journal::{DegradedJournal, JournalEntry};
pub use mds::{FileId, FileMeta, Mds};
pub use metrics::{ArrivalRecord, ClusterMetrics};
pub use osd::{BlockId, Osd, StoredBlock};
pub use placement::{FlatPlacement, PlacementKind, PlacementPolicy, RackAwarePlacement};
pub use rangemap::{Discipline, RangeMap};
pub use recovery::{
    fail_node, fail_rack, reap_stalled_ops, run_recovery, start_recovery, PhaseStats,
    RecoveryReport, RecoveryState,
};
pub use registry::{
    MakeScheme, RegisteredScheme, SchemeError, SchemeFactory, SchemeParams, SchemeRegistry,
};
pub use replica::{ReplicaRecord, ReplicaStore};
pub use resync::{
    heal_node, repair_all_dirty_parity, start_resync, HealStats, ResyncState, ResyncStats,
};
pub use scheme::{
    deliver_read, deliver_update, Chunk, InstantScheme, PowerLossReport, SchemeMsg, UpdateReq,
    UpdateScheme,
};
pub use scrub::{run_full_scrub, start_scrub, ScrubState};
pub use shard::{ShardKey, ShardedMap, SHARDS, STRIPE_GROUP};
pub use tsue_integrity::{checksum, IntegrityError, SplitRng};
pub use verify::{check_consistency, check_data_blocks, check_parity, reference_data};

use tsue_device::{Device, HddModel, SsdModel};
use tsue_ec::{RsCode, StripeConfig};
use tsue_net::{NetModel, NetSpec, NodeId, Topology};
use tsue_sim::{Sim, Time, WorkerPool, MICROSECOND, MILLISECOND};

/// Which device model backs each OSD.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// SSD with FTL wear accounting (the paper's §5.1–5.3 testbed).
    Ssd,
    /// Spinning disk (the paper's §5.4 testbed).
    Hdd,
}

impl DeviceKind {
    /// Lower-case token used by scenario files and CLI flags.
    pub fn token(&self) -> &'static str {
        match self {
            DeviceKind::Ssd => "ssd",
            DeviceKind::Hdd => "hdd",
        }
    }

    /// Parses the scenario/CLI token (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "ssd" => Some(DeviceKind::Ssd),
            "hdd" => Some(DeviceKind::Hdd),
            _ => None,
        }
    }
}

// Hand-written (rather than derived) so scenario JSON reads
// `"device": "ssd"` with the same tokens the CLI flags use.
impl serde::Serialize for DeviceKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.token().to_string())
    }
}

impl serde::Deserialize for DeviceKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Self::parse(s)
                .ok_or_else(|| serde::DeError::unknown_variant("DeviceKind", s, &["ssd", "hdd"])),
            other => Err(serde::DeError::mismatch("DeviceKind", "string", other)),
        }
    }
}

/// CPU cost model for delta/parity math.
#[derive(Clone, Copy, Debug)]
pub struct ComputeSpec {
    /// XOR throughput cost, ns per KiB.
    pub xor_ns_per_kib: Time,
    /// GF(2^8) multiply-accumulate cost, ns per KiB.
    pub gf_ns_per_kib: Time,
}

impl Default for ComputeSpec {
    fn default() -> Self {
        ComputeSpec {
            xor_ns_per_kib: 60,
            gf_ns_per_kib: 280,
        }
    }
}

/// Static configuration of a cluster experiment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of OSD nodes (the paper uses 16).
    pub osds: usize,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Stripe geometry (k, m, block size).
    pub stripe: StripeConfig,
    /// SSD or HDD backing.
    pub device: DeviceKind,
    /// Per-OSD device capacity in bytes; 0 = derive from the footprint.
    pub device_capacity: u64,
    /// Network fabric parameters.
    pub net: NetSpec,
    /// Fabric shape: flat non-blocking switch or racks behind
    /// oversubscribed ToR uplinks.
    pub topology: Topology,
    /// Block placement policy (rack-oblivious vs rack-aware).
    pub placement: PlacementKind,
    /// CPU cost model.
    pub compute: ComputeSpec,
    /// Bytes of file data owned by each client.
    pub file_size_per_client: u64,
    /// Maintain real block/log bytes (correctness runs) or timing only
    /// (performance runs).
    pub materialize: bool,
    /// Journal failure-window writes at the MDS (via a surviving peer)
    /// and replay them into rebuilt/healed blocks, instead of dropping
    /// their payloads. On by default: acked writes stay durable across
    /// kill→rebuild→heal windows.
    pub journal: bool,
    /// Record per-extent arrival order (needed by correctness tests).
    pub record_arrivals: bool,
    /// Maintain per-page block checksums and verify them on every read
    /// (see [`tsue_integrity`]). Content checksums exist only when
    /// `materialize` is also set; timing-only runs carry the flag but
    /// store no sums, so it costs nothing there.
    pub checksums: bool,
    /// Background scrub rate in MiB/s per OSD; `0` disables scrubbing.
    /// The scrubber sweeps every materialized block, verifies its
    /// checksums, and repairs corrupt pages from the stripe's survivors.
    pub scrub_mb_s: u64,
    /// Replication factor for scheme *parity-log* appends (PL/PLR-style
    /// logs). `1` means no replication; `r > 1` charges `r - 1` extra
    /// network transfers and peer log writes per append, modeling the
    /// durability cost of surviving a log-holder crash.
    pub log_replicas: usize,
    /// Master seed for workload generation.
    pub seed: u64,
    /// Worker threads for byte-kernel parallelism (encode, replay,
    /// rebuild decode). `1` runs everything inline on the coordinator.
    /// An execution parameter, not an experiment parameter: results are
    /// bit-identical at any thread count (see [`tsue_sim::exec`]), so
    /// scenario specs and goldens never record it.
    pub threads: usize,
}

impl ClusterConfig {
    /// The paper's SSD testbed shape: 16 OSDs, 25 Gb/s Ethernet, RS(k, m),
    /// 1 MiB blocks. Capacity and client count are experiment-specific.
    pub fn ssd_testbed(k: usize, m: usize, clients: usize) -> Self {
        ClusterConfig {
            osds: 16,
            clients,
            stripe: StripeConfig::new(k, m, 1 << 20),
            device: DeviceKind::Ssd,
            device_capacity: 0,
            net: NetSpec::ethernet_25g(),
            topology: Topology::flat(),
            placement: PlacementKind::Flat,
            compute: ComputeSpec::default(),
            file_size_per_client: 16 << 20,
            materialize: false,
            journal: true,
            record_arrivals: false,
            checksums: true,
            scrub_mb_s: 0,
            log_replicas: 1,
            seed: 42,
            threads: 1,
        }
    }

    /// The paper's HDD testbed shape: 16 OSDs, 40 Gb/s InfiniBand.
    pub fn hdd_testbed(k: usize, m: usize, clients: usize) -> Self {
        ClusterConfig {
            device: DeviceKind::Hdd,
            net: NetSpec::infiniband_40g(),
            ..Self::ssd_testbed(k, m, clients)
        }
    }

    /// Total user-data bytes across all clients.
    pub fn total_data(&self) -> u64 {
        self.file_size_per_client * self.clients as u64
    }
}

/// Everything in the cluster except the scheme slots.
pub struct ClusterCore {
    /// Static configuration.
    pub cfg: ClusterConfig,
    /// The Reed–Solomon code shared by all nodes.
    pub rs: RsCode,
    /// Block placement policy (see [`placement`]).
    pub placement: Box<dyn PlacementPolicy>,
    /// The network fabric.
    pub net: NetModel,
    /// One OSD per storage node.
    pub osds: Vec<Osd>,
    /// The metadata server.
    pub mds: Mds,
    /// Closed-loop clients.
    pub clients: Vec<ClientState>,
    /// Experiment counters.
    pub metrics: ClusterMetrics,
    /// In-flight client operations.
    pub pending: PendingTable,
    /// Clients stop issuing at this virtual time.
    pub stop_at: Option<Time>,
    /// The online recovery engine's work queue and statistics.
    pub recovery: RecoveryState,
    /// Parked degraded-write extents awaiting replay (see [`journal`]).
    pub journal: DegradedJournal,
    /// Heal-time re-sync bookkeeping (see [`resync`]).
    pub resync: ResyncState,
    /// Background scrub cursor and statistics (see [`scrub`]).
    pub scrub: ScrubState,
    /// Replicated data-log records, keyed by the home OSD whose log they
    /// shadow (see [`replica`]).
    pub replicas: ReplicaStore,
    /// Worker pool for byte-kernel parallelism inside single events
    /// (tick-barrier model — see [`tsue_sim::exec`]).
    pub pool: WorkerPool,
}

/// The DES world: core + pluggable per-OSD schemes.
pub struct Cluster {
    /// Shared substrate.
    pub core: ClusterCore,
    /// One scheme instance per OSD; `None` only while a callback borrows it.
    pub schemes: Vec<Option<Box<dyn UpdateScheme>>>,
}

impl Cluster {
    /// Builds a cluster, creates one file per client, and pre-populates all
    /// stripes (so every trace write is an *update*, matching the paper's
    /// replay methodology). Device/network stats are reset afterwards.
    ///
    /// `make_scheme` constructs the update scheme for each OSD index.
    pub fn new<F>(mut cfg: ClusterConfig, mut make_scheme: F) -> Self
    where
        F: FnMut(usize) -> Box<dyn UpdateScheme>,
    {
        // INVARIANT: supported configs keep 1 <= k, 1 <= m, k + m <= 255
        // (GF(256) code width); a bad stripe shape is a configuration bug
        // worth stopping at construction.
        let rs = RsCode::new(cfg.stripe.k, cfg.stripe.m).expect("valid RS parameters");
        let placement = cfg.placement.build(cfg.osds, cfg.topology.racks);
        assert!(
            cfg.osds >= cfg.stripe.k + cfg.stripe.m,
            "cluster smaller than stripe width"
        );
        if cfg.device_capacity == 0 {
            // Block footprint (data + parity) plus a generous allowance for
            // scheme log regions, spread over the OSDs. The FTL maps pages
            // sparsely, so oversizing costs no memory for untouched space.
            let raw = cfg.total_data() as f64
                * ((cfg.stripe.k + cfg.stripe.m) as f64 / cfg.stripe.k as f64)
                / cfg.osds as f64;
            cfg.device_capacity = (raw * 2.0) as u64 + (768 << 20);
        }
        let rack_map = cfg.topology.rack_map(cfg.osds, cfg.clients);
        let net = NetModel::with_topology(cfg.net, cfg.topology, rack_map);
        let osds = (0..cfg.osds)
            .map(|n| {
                let device = match cfg.device {
                    DeviceKind::Ssd => Device::new_ssd(SsdModel::datacenter(cfg.device_capacity)),
                    DeviceKind::Hdd => Device::new_hdd(HddModel::nearline(cfg.device_capacity)),
                };
                let mut osd = Osd::new(n, device);
                osd.checksums = cfg.checksums;
                osd
            })
            .collect();
        let schemes = (0..cfg.osds).map(|i| Some(make_scheme(i))).collect();
        let core = ClusterCore {
            rs,
            placement,
            net,
            osds,
            mds: Mds::new(cfg.osds),
            clients: Vec::new(),
            metrics: ClusterMetrics::new(cfg.record_arrivals),
            pending: PendingTable::default(),
            stop_at: None,
            recovery: RecoveryState::default(),
            journal: DegradedJournal::default(),
            resync: ResyncState::default(),
            scrub: ScrubState::default(),
            replicas: ReplicaStore::default(),
            pool: WorkerPool::new(cfg.threads),
            cfg,
        };
        let mut world = Cluster { schemes, core };
        world.provision_files();
        world
    }

    /// Creates and pre-populates one file per client.
    fn provision_files(&mut self) {
        let core = &mut self.core;
        for c in 0..core.cfg.clients {
            let file = core.create_file(core.cfg.file_size_per_client);
            let gen_seed = core.cfg.seed.wrapping_mul(0x9e3779b97f4a7c15) ^ c as u64;
            core.clients
                .push(ClientState::new(c, core.cfg.osds + c, file, gen_seed));
        }
        // Setup I/O must not pollute experiment stats.
        for osd in &mut core.osds {
            osd.reset_stats();
        }
        core.net.reset_counters();
    }

    /// Split borrow used by event plumbing: the scheme slots next to the
    /// shared core.
    pub fn split(&mut self) -> (&mut ClusterCore, &mut Vec<Option<Box<dyn UpdateScheme>>>) {
        (&mut self.core, &mut self.schemes)
    }

    /// Total pending scheme work across *live* OSDs (0 = all logs
    /// drained). A dead node's logs are unreachable and irrelevant — its
    /// blocks are rebuilt from survivors, not from its logs.
    pub fn total_scheme_backlog(&self) -> u64 {
        self.schemes
            .iter()
            .enumerate()
            .filter(|&(osd, _)| !self.core.osds[osd].dead)
            .map(|(_, s)| s.as_ref().map_or(0, |s| s.backlog()))
            .sum()
    }

    /// Asks every scheme to drain its logs, then runs the simulation until
    /// all backlogs hit zero. Returns the drain-completion time.
    ///
    /// The drain proceeds in short strides, re-issuing `flush` after each
    /// one so multi-stage pipelines (data → delta → parity) cascade at
    /// device speed instead of waiting for background seal timers.
    pub fn flush_all(&mut self, sim: &mut Sim<Cluster>) -> Time {
        const STRIDE: Time = 20 * MILLISECOND;
        let mut idle_strides = 0u32;
        loop {
            for osd in 0..self.core.cfg.osds {
                if self.core.osds[osd].dead {
                    continue;
                }
                // INVARIANT: scheme slots are taken for one event callback and
                // restored before return; DES events never nest.
                let mut s = self.schemes[osd].take().expect("scheme missing");
                s.flush(&mut self.core, sim, osd);
                self.schemes[osd] = Some(s);
            }
            if self.total_scheme_backlog() == 0 {
                break;
            }
            let before = self.total_scheme_backlog();
            let had_events = sim.pending() > 0;
            sim.run_until(self, sim.now() + STRIDE);
            if self.total_scheme_backlog() >= before && !had_events {
                idle_strides += 1;
                assert!(
                    idle_strides < 3,
                    "flush stalled with backlog {}",
                    self.total_scheme_backlog()
                );
            } else {
                idle_strides = 0;
            }
        }
        sim.now()
    }

    /// Delivers a power loss to `node`'s scheme — torn log tail, restart,
    /// log scan, replica replay — and folds the outcome into the metrics.
    /// The node stays alive (a restart, not a kill).
    pub fn power_loss(
        &mut self,
        sim: &mut Sim<Cluster>,
        node: usize,
        seed: u64,
    ) -> PowerLossReport {
        // INVARIANT: scheme slots are taken for one event callback and
        // restored before return; DES events never nest.
        let mut s = self.schemes[node].take().expect("scheme reentrancy");
        let report = s.power_loss(&mut self.core, sim, node, seed);
        self.schemes[node] = Some(s);
        self.core.metrics.torn_detected += report.torn_detected;
        self.core.metrics.torn_replayed += report.torn_replayed;
        self.core.metrics.torn_discarded += report.torn_discarded;
        report
    }

    /// Sums device stats over all OSDs.
    pub fn device_stats(&self) -> tsue_device::DeviceStats {
        let mut total = tsue_device::DeviceStats::default();
        for osd in &self.core.osds {
            total.merge(osd.device.stats());
        }
        total
    }

    /// Peak and mean scheme memory across OSDs, in bytes.
    pub fn scheme_memory(&self) -> (u64, u64) {
        let per: Vec<u64> = self
            .schemes
            .iter()
            .map(|s| s.as_ref().map_or(0, |s| s.memory_usage()))
            .collect();
        let max = per.iter().copied().max().unwrap_or(0);
        let mean = if per.is_empty() {
            0
        } else {
            per.iter().sum::<u64>() / per.len() as u64
        };
        (max, mean)
    }
}

impl ClusterCore {
    /// Network node id of a client.
    #[inline]
    pub fn client_node(&self, client: usize) -> NodeId {
        self.cfg.osds + client
    }

    /// OSD hosting `role` of global stripe `stripe`: the placement
    /// policy's home unless recovery rebuilt the block elsewhere (the MDS
    /// rehome table overrides).
    #[inline]
    pub fn owner_of(&self, stripe: u64, role: usize) -> usize {
        let node = self
            .placement
            .node_for(stripe, role, self.cfg.stripe.blocks_per_stripe());
        self.mds.rehomed(stripe, role).unwrap_or(node)
    }

    /// OSDs hosting the parity blocks of `stripe`, in parity order.
    pub fn parity_owners(&self, stripe: u64) -> Vec<usize> {
        (0..self.cfg.stripe.m)
            .map(|j| self.owner_of(stripe, self.cfg.stripe.k + j))
            .collect()
    }

    /// CPU time to XOR `bytes`.
    #[inline]
    pub fn xor_time(&self, bytes: u64) -> Time {
        (bytes * self.cfg.compute.xor_ns_per_kib)
            .div_ceil(1024)
            .max(200)
    }

    /// CPU time for a GF multiply-accumulate over `bytes`.
    #[inline]
    pub fn gf_time(&self, bytes: u64) -> Time {
        (bytes * self.cfg.compute.gf_ns_per_kib)
            .div_ceil(1024)
            .max(300)
    }

    /// Creates a file of `size` bytes: registers stripes with the MDS,
    /// allocates blocks on the OSDs, and pre-populates content (zeroes) so
    /// subsequent writes are updates.
    pub fn create_file(&mut self, size: u64) -> FileId {
        let stripes = size.div_ceil(self.cfg.stripe.stripe_data_bytes());
        let file = self.mds.register_file(size, stripes);
        let meta = self.mds.file(file).clone();
        let bs = self.cfg.stripe.block_size;
        for s in 0..stripes {
            let gstripe = meta.base_stripe + s;
            for role in 0..self.cfg.stripe.blocks_per_stripe() {
                let owner = self.owner_of(gstripe, role);
                let block = BlockId {
                    file,
                    stripe: s,
                    role,
                };
                self.osds[owner].provision_block(block, bs, self.cfg.materialize);
            }
        }
        self.mds.mark_prepopulated(file);
        file
    }

    /// Global stripe index for `(file, stripe-within-file)`.
    #[inline]
    pub fn global_stripe(&self, file: FileId, stripe: u64) -> u64 {
        self.mds.file(file).base_stripe + stripe
    }

    /// Sends a scheme message from one OSD to another, arriving after the
    /// modeled network transfer of `payload_bytes`.
    pub fn send_to_scheme(
        &mut self,
        sim: &mut Sim<Cluster>,
        from_osd: usize,
        to_osd: usize,
        payload_bytes: u64,
        msg: SchemeMsg,
    ) {
        let arrival = self.net.transfer(
            sim.now(),
            self.osds[from_osd].node,
            self.osds[to_osd].node,
            payload_bytes,
        );
        if matches!(msg, SchemeMsg::DeltaForward { .. }) {
            self.metrics
                .obs
                .delta_forwarded(from_osd, to_osd, sim.now(), arrival);
        }
        sim.schedule_at(arrival, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            scheme::deliver_msg(w, sim, to_osd, msg);
        });
    }

    /// Schedules a scheme timer callback on `osd` after `delay`.
    pub fn scheme_timer(&mut self, sim: &mut Sim<Cluster>, osd: usize, delay: Time, tag: u64) {
        sim.schedule(delay, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            scheme::deliver_timer(w, sim, osd, tag);
        });
    }

    /// Completes the synchronous part of one update extent: acks the client
    /// over the network; the client issues its next op when all extents of
    /// the op have acked.
    pub fn extent_done(&mut self, sim: &mut Sim<Cluster>, osd: usize, op_id: u64) {
        let Some(client) = self.pending.client_of(op_id) else {
            return;
        };
        self.metrics.obs.extent_service_done(op_id, osd, sim.now());
        let arrival = self.net.transfer(
            sim.now(),
            self.osds[osd].node,
            self.client_node(client),
            ACK_BYTES,
        );
        self.metrics.obs.ack_sent(op_id, client, sim.now(), arrival);
        sim.schedule_at(arrival, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            client::client_ack(w, sim, op_id);
        });
    }

    /// Whether the experiment window is still open.
    pub fn accepting(&self, now: Time) -> bool {
        self.stop_at.is_none_or(|t| now < t)
    }
}

/// Ack message size on the wire.
pub const ACK_BYTES: u64 = 64;

/// Modeled failover penalty: how long a client (or peer scheme) waits
/// before treating a request to a dead node as failed-over — stands in
/// for connection-refused detection plus the MDS redirect round-trip.
pub const FAILOVER_DELAY: Time = 500 * MICROSECOND;

/// Completes one extent of `op_id` after [`FAILOVER_DELAY`] — the shared
/// "request hit a dead node, client gives up on this extent" path used
/// by degraded writes and unservable reads.
pub fn fail_over_ack(sim: &mut Sim<Cluster>, op_id: u64) {
    sim.schedule(
        FAILOVER_DELAY,
        move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            client::client_ack(w, sim, op_id);
        },
    );
}

/// Tracks in-flight client operations.
#[derive(Default)]
pub struct PendingTable {
    next_id: u64,
    ops: std::collections::BTreeMap<u64, PendingOp>,
}

/// One in-flight client op (possibly spanning several extents).
pub struct PendingOp {
    /// Issuing client.
    pub client: usize,
    /// Extents still outstanding.
    pub remaining: usize,
    /// Virtual time the op was issued.
    pub issued_at: Time,
    /// True for updates, false for reads.
    pub is_write: bool,
    /// At least one extent parked in the degraded-write journal (or
    /// failed over) because its home OSD was dead — completions classify
    /// as [`tsue_obs::OpClass::DegradedWrite`] when set on a write.
    pub degraded: bool,
}

impl PendingTable {
    /// Registers a new op; returns its id.
    pub fn insert(
        &mut self,
        client: usize,
        extents: usize,
        issued_at: Time,
        is_write: bool,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.ops.insert(
            id,
            PendingOp {
                client,
                remaining: extents,
                issued_at,
                is_write,
                degraded: false,
            },
        );
        id
    }

    /// Client that issued `op`, if still pending.
    pub fn client_of(&self, op: u64) -> Option<usize> {
        self.ops.get(&op).map(|p| p.client)
    }

    /// Issue time of `op`, if still pending.
    pub fn issued_at(&self, op: u64) -> Option<Time> {
        self.ops.get(&op).map(|p| p.issued_at)
    }

    /// Flags `op` as degraded (an extent parked or failed over).
    pub fn mark_degraded(&mut self, op: u64) {
        if let Some(p) = self.ops.get_mut(&op) {
            p.degraded = true;
        }
    }

    /// Decrements the remaining-extent count; returns the finished op when
    /// it reaches zero.
    pub fn complete_extent(&mut self, op: u64) -> Option<PendingOp> {
        let entry = self.ops.get_mut(&op)?;
        entry.remaining -= 1;
        if entry.remaining == 0 {
            self.ops.remove(&op)
        } else {
            None
        }
    }

    /// Number of in-flight ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Ops issued at or before `deadline`, oldest first — candidates for
    /// the failover watchdog's forced completion.
    pub fn stalled(&self, deadline: Time) -> Vec<u64> {
        let mut ids: Vec<(Time, u64)> = self
            .ops
            .iter()
            .filter(|(_, op)| op.issued_at <= deadline)
            .map(|(&id, op)| (op.issued_at, id))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }

    /// Removes an op outright regardless of outstanding extents (failover
    /// watchdog). Later extent acks for it become no-ops.
    pub fn force_remove(&mut self, op: u64) -> Option<PendingOp> {
        self.ops.remove(&op)
    }
}

/// Deterministic payload bytes for extent `ext` of op `op_id` — pure
/// function so correctness tests can regenerate the exact stream.
pub fn payload_for(op_id: u64, ext: usize, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    payload_into(op_id, ext, &mut buf);
    buf
}

/// Generates the same deterministic stream directly into `buf` — the
/// zero-allocation form the client hot path uses with pooled buffers.
pub fn payload_into(op_id: u64, ext: usize, buf: &mut [u8]) {
    let mut x = op_id
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(ext as u64)
        | 1;
    for b in buf.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = (x >> 24) as u8;
    }
}

/// Convenience: run a fully-configured cluster for `duration` of virtual
/// time with all clients active, then drain in-flight ops. Returns the
/// virtual time at which the last op completed.
pub fn run_workload(world: &mut Cluster, sim: &mut Sim<Cluster>, duration: Time) -> Time {
    world.core.stop_at = Some(sim.now() + duration);
    world.core.metrics.window_start = sim.now();
    start_clients(world, sim);
    sim.run_while(world, |w| !w.core.pending.is_empty());
    sim.now().max(world.core.stop_at.unwrap_or(0))
}

/// A tiny latency floor for in-memory operations (index updates, buffer
/// copies) on the OSD CPU.
pub const MEM_OP: Time = MICROSECOND;
