//! Block placement policies: which OSD hosts each role of each stripe.
//!
//! The seed system hard-wired round-robin rotation
//! ([`tsue_ec::StripeLayout`]). With a rack topology in the fabric model,
//! placement becomes a policy decision with availability consequences:
//!
//! * [`FlatPlacement`] — the seed behavior: consecutive roles on
//!   consecutive OSDs, rotated per stripe. Oblivious to racks, so a
//!   stripe's blocks can pile onto one rack and a single rack failure can
//!   exceed the code's tolerance `m` (data loss).
//! * [`RackAwarePlacement`] — spreads each stripe's `k + m` blocks
//!   round-robin across racks (at most `ceil((k+m)/racks)` per rack), so
//!   whenever `ceil((k+m)/racks) <= m` any single-rack failure stays
//!   recoverable — the property Rashmi et al. and CNC-style maintenance
//!   assume of production clusters.
//!
//! Policies are pure functions of `(stripe, role)` so every layer —
//! client dispatch, scheme delta routing, recovery survivor selection —
//! derives identical homes without shared mutable state. Post-recovery
//! overrides (blocks rebuilt onto new homes) are layered on top by the
//! MDS rehome table, not by the policy.

use serde::{Deserialize, Serialize, Value};
use tsue_ec::StripeLayout;

/// Placement policy selector — the serializable form used by scenario
/// files (`"placement": "rack-aware"`) and [`crate::ClusterConfig`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlacementKind {
    /// Round-robin rotation, rack-oblivious (the seed behavior).
    #[default]
    Flat,
    /// Stripe blocks spread across racks for single-rack-failure safety.
    RackAware,
}

impl PlacementKind {
    /// Lower-case token used by scenario files and CLI flags.
    pub fn token(&self) -> &'static str {
        match self {
            PlacementKind::Flat => "flat",
            PlacementKind::RackAware => "rack-aware",
        }
    }

    /// All selectable tokens (CLI/scenario error messages).
    pub fn names() -> &'static [&'static str] {
        &["flat", "rack-aware"]
    }

    /// Parses the scenario/CLI token (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "flat" => Some(PlacementKind::Flat),
            "rack-aware" | "rack_aware" | "rackaware" => Some(PlacementKind::RackAware),
            _ => None,
        }
    }

    /// Builds the concrete policy for a cluster of `osds` nodes in
    /// `racks` racks.
    ///
    /// # Panics
    /// Panics if rack-aware placement is requested with `osds` not
    /// divisible by `racks` (unequal racks would break the distinctness
    /// guarantee); scenario validation reports this before construction.
    pub fn build(&self, osds: usize, racks: usize) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementKind::Flat => Box::new(FlatPlacement::new(osds)),
            PlacementKind::RackAware => Box::new(RackAwarePlacement::new(osds, racks)),
        }
    }
}

// Hand-written (rather than derived) so scenario JSON reads
// `"placement": "rack-aware"` with the same tokens the CLI flags use.
impl Serialize for PlacementKind {
    fn to_value(&self) -> Value {
        Value::Str(self.token().to_string())
    }
}

impl Deserialize for PlacementKind {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        match v {
            Value::Str(s) => Self::parse(s)
                .ok_or_else(|| serde::DeError::unknown_variant("PlacementKind", s, Self::names())),
            other => Err(serde::DeError::mismatch("PlacementKind", "string", other)),
        }
    }
}

/// A block-placement policy: a pure `(stripe, role) → OSD` map.
pub trait PlacementPolicy: std::fmt::Debug + Send {
    /// Policy name (diagnostics).
    fn name(&self) -> &'static str;

    /// The OSD hosting `role` (0..k data, k..k+m parity) of `stripe`.
    fn node_for(&self, stripe: u64, role: usize, blocks_per_stripe: usize) -> usize;

    /// All roles of `stripe` hosted on `node` (recovery enumeration).
    fn roles_on_node(&self, stripe: u64, node: usize, blocks_per_stripe: usize) -> Vec<usize> {
        (0..blocks_per_stripe)
            .filter(|&r| self.node_for(stripe, r, blocks_per_stripe) == node)
            .collect()
    }
}

/// The seed policy: [`StripeLayout`]'s per-stripe-rotated round-robin.
#[derive(Clone, Copy, Debug)]
pub struct FlatPlacement {
    layout: StripeLayout,
}

impl FlatPlacement {
    /// Creates the policy over `osds` nodes.
    pub fn new(osds: usize) -> Self {
        FlatPlacement {
            layout: StripeLayout::new(osds),
        }
    }
}

impl PlacementPolicy for FlatPlacement {
    fn name(&self) -> &'static str {
        "flat"
    }

    #[inline]
    fn node_for(&self, stripe: u64, role: usize, blocks_per_stripe: usize) -> usize {
        self.layout.node_for(stripe, role, blocks_per_stripe)
    }
}

/// Rack-aware placement over `racks` equal racks of `osds / racks` nodes
/// (rack `r` owns OSDs `r*len .. (r+1)*len`, matching
/// [`tsue_net::Topology::rack_map`]'s contiguous OSD assignment).
///
/// Role `r` of stripe `s` goes to rack `(s + r) % racks` — consecutive
/// roles fan out over consecutive racks, and the stripe index rotates
/// which rack takes the first block so parity load balances. Within the
/// rack, the slot rotates by `s / racks` so stripes also balance across
/// the rack's members. Distinctness: two roles land on the same rack only
/// when they differ by a multiple of `racks`, and then their in-rack
/// slots differ because `ceil(bps / racks) <= osds / racks` (implied by
/// `bps <= osds`).
#[derive(Clone, Copy, Debug)]
pub struct RackAwarePlacement {
    racks: usize,
    per_rack: usize,
}

impl RackAwarePlacement {
    /// Creates the policy.
    ///
    /// # Panics
    /// Panics if `racks == 0` or `osds` is not divisible by `racks`.
    pub fn new(osds: usize, racks: usize) -> Self {
        assert!(racks > 0, "rack-aware placement needs at least one rack");
        assert!(
            osds.is_multiple_of(racks),
            "rack-aware placement needs equal racks ({osds} OSDs across {racks} racks)"
        );
        RackAwarePlacement {
            racks,
            per_rack: osds / racks,
        }
    }

    /// Blocks of one stripe a single rack can host — the quantity that
    /// must stay `<= m` for single-rack-failure survivability.
    pub fn max_blocks_per_rack(&self, blocks_per_stripe: usize) -> usize {
        blocks_per_stripe.div_ceil(self.racks)
    }
}

impl PlacementPolicy for RackAwarePlacement {
    fn name(&self) -> &'static str {
        "rack-aware"
    }

    #[inline]
    fn node_for(&self, stripe: u64, role: usize, blocks_per_stripe: usize) -> usize {
        debug_assert!(role < blocks_per_stripe);
        debug_assert!(blocks_per_stripe <= self.racks * self.per_rack);
        let rack = (stripe as usize + role) % self.racks;
        let slot = (stripe as usize / self.racks + role / self.racks) % self.per_rack;
        rack * self.per_rack + slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tokens_round_trip() {
        for name in PlacementKind::names() {
            let k = PlacementKind::parse(name).unwrap();
            assert_eq!(k.token(), *name);
            let v = serde::Serialize::to_value(&k);
            assert_eq!(
                <PlacementKind as serde::Deserialize>::from_value(&v).unwrap(),
                k
            );
        }
        assert!(PlacementKind::parse("diagonal").is_none());
    }

    #[test]
    fn flat_matches_stripe_layout() {
        let p = FlatPlacement::new(16);
        let l = StripeLayout::new(16);
        for s in 0..40u64 {
            for role in 0..6 {
                assert_eq!(p.node_for(s, role, 6), l.node_for(s, role, 6));
            }
        }
    }

    #[test]
    fn rack_aware_nodes_are_distinct_and_spread() {
        let p = RackAwarePlacement::new(16, 4);
        let bps = 6; // RS(4, 2)
        for s in 0..64u64 {
            let mut nodes = HashSet::new();
            let mut per_rack = [0usize; 4];
            for role in 0..bps {
                let n = p.node_for(s, role, bps);
                assert!(n < 16);
                assert!(nodes.insert(n), "stripe {s} role {role} collides");
                per_rack[n / 4] += 1;
            }
            let cap = p.max_blocks_per_rack(bps);
            assert!(
                per_rack.iter().all(|&c| c <= cap),
                "stripe {s} overloads a rack: {per_rack:?}"
            );
            // RS(4,2) over 4 racks: at most 2 = m per rack ⇒ any single
            // rack failure is survivable.
            assert!(per_rack.iter().all(|&c| c <= 2));
        }
    }

    #[test]
    fn rack_aware_rotates_racks_and_slots() {
        let p = RackAwarePlacement::new(8, 2);
        // Rack of the first role rotates with the stripe index.
        let r0 = p.node_for(0, 0, 4) / 4;
        let r1 = p.node_for(1, 0, 4) / 4;
        assert_ne!(r0, r1);
        // In-rack slot rotates across stripe groups.
        assert_ne!(p.node_for(0, 0, 4), p.node_for(2, 0, 4));
    }

    #[test]
    #[should_panic(expected = "equal racks")]
    fn rack_aware_rejects_unequal_racks() {
        RackAwarePlacement::new(10, 4);
    }

    #[test]
    fn roles_on_node_matches_forward_map() {
        let p = RackAwarePlacement::new(12, 3);
        for s in 0..12u64 {
            for node in 0..12 {
                for role in p.roles_on_node(s, node, 7) {
                    assert_eq!(p.node_for(s, role, 7), node);
                }
            }
        }
    }
}
