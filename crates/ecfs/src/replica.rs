//! Replicated data-log records: the cluster-side shadow of a scheme's
//! data-log appends.
//!
//! Log-buffered schemes ack an update once it is appended to the home
//! OSD's data log — which makes the log the *only* copy of the payload
//! until recycle merges it into the block. If the home dies first, a
//! stripe rebuild decodes the block from survivors *as of the last
//! merge*, silently losing every acked-but-unmerged append. To close
//! that window the scheme forwards each append to `r - 1` peers; the
//! peers park the records here, keyed by the home OSD whose log they
//! shadow, and recovery replays them onto the rebuilt block before it
//! goes live ([`crate::recovery`]). Power-loss restarts use the same
//! records to repair a torn log tail byte-exactly.
//!
//! The store keeps one logical copy of each record (content plane);
//! the durability *cost* of the extra copies — wire transfers and peer
//! log appends — is charged by the forwarding scheme (timing plane).
//! Records are pruned once the home seals-and-recycles past them: a
//! merged append is reconstructable from the block itself.

use crate::osd::{BlockId, STREAM_BLOCK};
use crate::scheme::Chunk;
use crate::Cluster;
use std::collections::BTreeMap;
use tsue_device::IoKind;
use tsue_sim::Sim;

/// One replicated data-log append.
#[derive(Clone, Debug)]
pub struct ReplicaRecord {
    /// Home-log sequence number (append order; prune watermark).
    pub seq: u64,
    /// Target data block.
    pub block: BlockId,
    /// Offset within the block.
    pub off: u64,
    /// The payload (ghost in timing-only runs).
    pub data: Chunk,
}

/// All live replica records, keyed by the home OSD whose data log they
/// shadow. Owned by [`crate::ClusterCore`].
#[derive(Debug, Default)]
pub struct ReplicaStore {
    by_home: BTreeMap<usize, Vec<ReplicaRecord>>,
    /// Cumulative bytes replayed onto rebuilt blocks.
    pub bytes_replayed: u64,
}

impl ReplicaStore {
    /// Parks one record shadowing `home`'s data log. Records arrive in
    /// `seq` order per home (one sender, FIFO wire), so the vector stays
    /// sorted by construction.
    pub fn push(&mut self, home: usize, rec: ReplicaRecord) {
        self.by_home.entry(home).or_default().push(rec);
    }

    /// Drops every record of `home` with `seq <= watermark` — the home
    /// recycled its log past them, so the block itself now holds the
    /// content.
    pub fn prune_up_to(&mut self, home: usize, watermark: u64) {
        if let Some(v) = self.by_home.get_mut(&home) {
            v.retain(|r| r.seq > watermark);
            if v.is_empty() {
                self.by_home.remove(&home);
            }
        }
    }

    /// Live records shadowing `home`'s log that target `block`, in
    /// append (`seq`) order — the replay source for a rebuild of that
    /// block.
    pub fn records_for_block(&self, home: usize, block: &BlockId) -> Vec<ReplicaRecord> {
        self.by_home
            .get(&home)
            .map(|v| v.iter().filter(|r| r.block == *block).cloned().collect())
            .unwrap_or_default()
    }

    /// The highest-`seq` record of `home` (the log tail a power loss
    /// would tear), if any records are live.
    pub fn tail(&self, home: usize) -> Option<&ReplicaRecord> {
        self.by_home.get(&home).and_then(|v| v.last())
    }

    /// Drops `home`'s records targeting `block` — they were just
    /// replayed onto the rebuilt copy.
    pub fn prune_block(&mut self, home: usize, block: &BlockId) {
        if let Some(v) = self.by_home.get_mut(&home) {
            v.retain(|r| r.block != *block);
            if v.is_empty() {
                self.by_home.remove(&home);
            }
        }
    }

    /// Accounts `bytes` of replica records replayed onto a rebuilt block.
    pub fn note_replayed(&mut self, bytes: u64) {
        self.bytes_replayed += bytes;
    }

    /// Live records shadowing `home`'s log.
    pub fn len(&self, home: usize) -> usize {
        self.by_home.get(&home).map_or(0, Vec::len)
    }

    /// True when no record of any home is live.
    pub fn is_empty(&self) -> bool {
        self.by_home.is_empty()
    }

    /// Approximate bytes pinned by parked payloads.
    pub fn memory_usage(&self) -> u64 {
        self.by_home
            .values()
            .flat_map(|v| v.iter())
            .map(|r| r.data.len + std::mem::size_of::<ReplicaRecord>() as u64)
            .sum()
    }
}

/// Replays `home`'s live replica records for `block` onto the rebuilt
/// copy at `target`, in append (`seq`) order. Returns the bytes applied.
///
/// Called from rebuild completion, after `reconstruct_one` and before
/// the degraded-write journal replay: the reconstruct decodes the block
/// *as of the last log merge*, so acked-but-unmerged appends exist only
/// in the dead home's data log and its replicas. The records are ghosts
/// (timing + bookkeeping); the one logical copy of the content is the
/// home's unit index, read back side-effect-free through
/// [`crate::UpdateScheme::patch_unmerged`] and patched over the
/// reconstructed bytes (newest wins). Timing: the fetch from the
/// nearest live peer and the in-place write are charged per record from
/// `now` onward. The replayed appends never produced parity deltas
/// (their data-log units had not sealed), so every parity role of the
/// stripe is marked dirty for the next authoritative re-encode.
pub(crate) fn replay_replicas(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    target: usize,
    home: usize,
    block: BlockId,
) -> u64 {
    let Cluster { core, schemes, .. } = world;
    let recs = core.replicas.records_for_block(home, &block);
    if recs.is_empty() {
        return 0;
    }
    let now = sim.now();
    let gstripe = core.global_stripe(block.file, block.stripe);
    let (k, m) = (core.cfg.stripe.k, core.cfg.stripe.m);
    // The records physically sit on the home's ring successors, so the
    // fetch is charged from the nearest live peer (the home itself is
    // dead or being replaced).
    let src = (1..core.cfg.osds)
        .map(|r| (home + r) % core.cfg.osds)
        .find(|&p| p != target && core.mds.is_alive(p));
    let mut replayed = 0u64;
    for r in &recs {
        let len = r.data.len;
        replayed += len;
        if let Some(p) = src {
            core.net
                .transfer(now, core.osds[p].node, core.osds[target].node, len);
        }
        let dev_off = core.osds[target].block_offset(block) + r.off;
        core.osds[target]
            .device
            .submit(now, IoKind::Write, dev_off, len, STREAM_BLOCK);
    }
    if core.cfg.materialize {
        if let Some(scheme) = schemes[home].as_ref() {
            let bs = core.cfg.stripe.block_size;
            if let Some(bytes) = core.osds[target].peek_block_range(block, 0, bs) {
                let mut buf = bytes.to_vec();
                core.metrics.recovery_copies += 1;
                core.metrics.recovery_bytes_copied += bs;
                scheme.patch_unmerged(block, 0, bs, &mut buf);
                core.osds[target].poke_block_range(block, 0, Some(&buf));
            }
        }
    }
    for j in 0..m {
        core.mds.mark_parity_dirty(gstripe, k + j);
    }
    core.replicas.note_replayed(replayed);
    core.replicas.prune_block(home, &block);
    replayed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(stripe: u64, role: usize) -> BlockId {
        BlockId {
            file: 0,
            stripe,
            role,
        }
    }

    fn rec(seq: u64, stripe: u64, off: u64) -> ReplicaRecord {
        ReplicaRecord {
            seq,
            block: bid(stripe, 0),
            off,
            data: Chunk::real(vec![seq as u8; 8]),
        }
    }

    #[test]
    fn push_filter_and_order() {
        let mut s = ReplicaStore::default();
        s.push(3, rec(1, 0, 0));
        s.push(3, rec(2, 1, 8));
        s.push(3, rec(3, 0, 16));
        s.push(4, rec(1, 0, 0));
        let for_b0 = s.records_for_block(3, &bid(0, 0));
        assert_eq!(for_b0.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(s.len(3), 3);
        assert_eq!(s.len(4), 1);
        assert_eq!(s.tail(3).unwrap().seq, 3);
    }

    #[test]
    fn prune_respects_watermark_and_cleans_up() {
        let mut s = ReplicaStore::default();
        for q in 1..=5 {
            s.push(0, rec(q, 0, q * 8));
        }
        s.prune_up_to(0, 3);
        assert_eq!(s.len(0), 2);
        assert_eq!(s.records_for_block(0, &bid(0, 0))[0].seq, 4);
        s.prune_up_to(0, 99);
        assert!(s.is_empty());
    }

    #[test]
    fn memory_counts_payloads() {
        let mut s = ReplicaStore::default();
        assert_eq!(s.memory_usage(), 0);
        s.push(1, rec(1, 0, 0));
        assert!(s.memory_usage() >= 8);
    }
}
