//! The pluggable update-scheme interface and its event plumbing.
//!
//! A scheme instance lives on each OSD and implements the *update path* of
//! the file system: what happens when an update extent lands on the data
//! block's owner, how deltas reach parity owners, how logs are recycled,
//! and how reads see not-yet-merged log content. All cross-OSD interaction
//! goes through [`SchemeMsg`]s delivered by the DES after modeled network
//! transfers; all device access goes through the owning OSD's device model.
//! This is exactly the surface the paper says its six implementations share
//! (§5: "implemented on the CLIENT side and the OSD side").

use crate::osd::BlockId;
use crate::{client, Cluster, ClusterCore};
use tsue_buf::{Bytes, BytesMut};
use tsue_sim::{Sim, Time};

/// A byte payload that may be timing-only. In materialized (correctness)
/// runs chunks carry real bytes; in performance runs only the length.
///
/// Payload bytes are [`Bytes`] — `Arc`-backed shared buffers — so cloning
/// a chunk (forwarding it over the network, folding it into a log index,
/// collecting recycle jobs) bumps a refcount instead of copying, and
/// sub-range extraction ([`Chunk::slice`]) is O(1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Payload length in bytes.
    pub len: u64,
    /// The bytes, when the cluster materializes data.
    pub bytes: Option<Bytes>,
}

impl Chunk {
    /// A timing-only chunk.
    pub fn ghost(len: u64) -> Self {
        Chunk { len, bytes: None }
    }

    /// A materialized chunk.
    ///
    /// # Panics
    /// Panics if `bytes` is empty (zero-length extents are a bug upstream).
    pub fn real(bytes: impl Into<Bytes>) -> Self {
        let bytes = bytes.into();
        assert!(!bytes.is_empty(), "empty chunk");
        Chunk {
            len: bytes.len() as u64,
            bytes: Some(bytes),
        }
    }

    /// O(1) sub-chunk `[rel, rel + len)` sharing the backing buffer.
    ///
    /// # Panics
    /// Panics if the range exceeds the chunk.
    pub fn slice(&self, rel: u64, len: u64) -> Chunk {
        debug_assert!(rel + len <= self.len, "chunk slice out of range");
        match &self.bytes {
            Some(b) => Chunk::real(b.slice(rel as usize, len as usize)),
            None => Chunk::ghost(len),
        }
    }

    /// XORs `other` into this chunk (delta folding); ghost chunks fold into
    /// ghost chunks. Folds in place when this chunk owns its buffer
    /// uniquely; a shared buffer triggers one copy-on-write.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xor_in(&mut self, other: &Chunk) {
        assert_eq!(self.len, other.len, "chunk length mismatch");
        match (self.bytes.as_mut(), other.bytes.as_ref()) {
            (Some(a), Some(b)) => {
                if let Some(buf) = a.unique_mut() {
                    tsue_gf::xor_slice(b, buf);
                } else {
                    // Copy-on-write: one pooled buffer, one fused pass
                    // (counted — the shared buffer forced a duplication).
                    let mut m = BytesMut::take(b.len());
                    tsue_gf::xor_into(a, b, m.as_mut());
                    tsue_buf::count_copy(b.len() as u64);
                    *a = m.freeze();
                }
            }
            _ => self.bytes = None,
        }
    }

    /// Returns a GF-scaled copy: `coeff * self` (parity-delta computation).
    /// The result lives in a pool-recycled buffer.
    pub fn gf_scaled(&self, coeff: u8) -> Chunk {
        match &self.bytes {
            Some(b) => {
                let mut out = BytesMut::take(b.len());
                tsue_gf::mul_slice(coeff, b, out.as_mut());
                Chunk::real(out.freeze())
            }
            None => Chunk::ghost(self.len),
        }
    }

    /// Consuming GF scale: scales in place when the buffer is uniquely
    /// owned (zero scratch), else behaves like [`Chunk::gf_scaled`].
    pub fn into_gf_scaled(mut self, coeff: u8) -> Chunk {
        if let Some(b) = self.bytes.as_mut() {
            if let Some(buf) = b.unique_mut() {
                tsue_gf::mul_slice_assign(coeff, buf);
                return self;
            }
        }
        self.gf_scaled(coeff)
    }
}

/// An update extent as it arrives at the data block's OSD.
#[derive(Clone, Debug)]
pub struct UpdateReq {
    /// The in-flight client op this extent belongs to.
    pub op_id: u64,
    /// Index of the extent within the op (payload derivation).
    pub ext: usize,
    /// Target data block (role < k).
    pub block: BlockId,
    /// Offset within the block.
    pub off: u64,
    /// New data.
    pub data: Chunk,
}

/// What kind of delta a [`SchemeMsg::DeltaForward`] carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// `D_new ⊕ D_old` — multiply by the coefficient at the parity side.
    DataDelta,
    /// Already multiplied: XOR straight into the parity block/log.
    ParityDelta,
}

/// Messages exchanged between scheme instances on different OSDs.
#[derive(Clone, Debug)]
pub enum SchemeMsg {
    /// Raw new data forwarded to a peer (PARIX speculative writes, TSUE
    /// data-log replication payloads).
    DataForward {
        /// Sending OSD (for replies).
        from: usize,
        /// Data block the payload belongs to.
        block: BlockId,
        /// Offset within the block.
        off: u64,
        /// The payload.
        data: Chunk,
        /// Scheme-specific discriminator.
        tag: u64,
        /// Replica sequence number: TSUE data-log replication stamps each
        /// forwarded append with the home OSD's monotonically increasing
        /// counter so peers can prune replayed/recycled records exactly.
        /// Schemes that do not replicate a data log send 0.
        seq: u64,
    },
    /// A delta destined for parity handling.
    DeltaForward {
        /// Sending OSD (for replies).
        from: usize,
        /// Data block the delta originated from.
        block: BlockId,
        /// Offset within the block.
        off: u64,
        /// Delta bytes.
        data: Chunk,
        /// Data-delta vs parity-delta.
        kind: DeltaKind,
        /// Which parity index (0..m) this is addressed to.
        parity_index: usize,
        /// Scheme-specific discriminator.
        tag: u64,
    },
    /// Positive acknowledgement carrying an opaque tag.
    Ack {
        /// Correlates with the request that asked for the ack.
        tag: u64,
    },
    /// Scheme-specific control signal.
    Control {
        /// Sending OSD (for replies).
        from: usize,
        /// Discriminator.
        tag: u64,
        /// Payload word A.
        a: u64,
        /// Payload word B.
        b: u64,
    },
}

/// Outcome of one power-loss restart at an OSD (log-tail tear + scan +
/// replay) — see [`UpdateScheme::power_loss`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PowerLossReport {
    /// Torn in-flight log appends detected by the restart scan.
    pub torn_detected: u64,
    /// Torn appends replayed byte-exactly from a surviving replica.
    pub torn_replayed: u64,
    /// Torn appends discarded for want of a replica (acked data lost).
    pub torn_discarded: u64,
}

impl PowerLossReport {
    /// Merges another report's counts into this one.
    pub fn merge(&mut self, other: PowerLossReport) {
        self.torn_detected += other.torn_detected;
        self.torn_replayed += other.torn_replayed;
        self.torn_discarded += other.torn_discarded;
    }
}

/// Result of asking a scheme to overlay a read from its logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadServe {
    /// The log/cache fully covered the range: no device read needed.
    CacheHit,
    /// Device read required (overlay, if any, was partial).
    Miss,
}

/// The update-scheme interface.
///
/// One instance per OSD. Methods receive the shared [`ClusterCore`] (all
/// devices, network, MDS — everything except other schemes) and the DES
/// handle for scheduling continuations.
///
/// `Send` is required so a cluster (scheme boxes included) can be moved
/// onto bench/test worker threads; scheme *methods* always run on the
/// coordinator — only the byte kernels they invoke fan out through
/// [`ClusterCore::pool`].
pub trait UpdateScheme: Send {
    /// Scheme name as used in the paper's figures ("FO", "PL", "TSUE", ...).
    fn name(&self) -> &'static str;

    /// An update extent arrived at this OSD (which owns `req.block`).
    /// The scheme must eventually call `core.extent_done(sim, osd, req.op_id)`
    /// exactly once — that is the client-visible completion.
    fn on_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    );

    /// A peer scheme's message arrived over the network.
    fn on_message(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        msg: SchemeMsg,
    );

    /// A timer armed via `core.scheme_timer` fired.
    fn on_timer(
        &mut self,
        _core: &mut ClusterCore,
        _sim: &mut Sim<Cluster>,
        _osd: usize,
        _tag: u64,
    ) {
    }

    /// Overlays any newer log content onto a read of
    /// `[off, off+len)` of `block`. `buf`, when present, already holds the
    /// store content and must be patched in place.
    fn read_overlay(
        &mut self,
        _core: &mut ClusterCore,
        _osd: usize,
        _block: BlockId,
        _off: u64,
        _len: u64,
        _buf: Option<&mut [u8]>,
    ) -> ReadServe {
        ReadServe::Miss
    }

    /// Kicks off draining of all pending log state toward data/parity
    /// blocks. Called repeatedly until [`Self::backlog`] reaches zero.
    fn flush(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize);

    /// Outstanding units of work (log entries, unmerged deltas, in-flight
    /// recycles). Zero means every block/parity is fully merged on disk.
    fn backlog(&self) -> u64;

    /// Bytes of memory the scheme currently pins (log buffers + indexes).
    fn memory_usage(&self) -> u64 {
        0
    }

    /// A power loss hit this OSD mid-append: the scheme's newest
    /// in-flight log record is torn at a pseudo-random byte offset
    /// (derived from `seed`), the node restarts, and the restart log
    /// scan classifies the tail as torn — never as a verified-but-wrong
    /// read. Torn appends are replayed byte-exactly from a surviving
    /// log replica when one exists, or discarded (counted) when not.
    ///
    /// The default suits schemes with no buffered log tail: in-place
    /// writers lose at most a write the client was never acked for, so
    /// there is nothing to tear. The node stays alive — a power loss is
    /// a restart, not a [`crate::fail_node`] kill.
    fn power_loss(
        &mut self,
        _core: &mut ClusterCore,
        _sim: &mut Sim<Cluster>,
        _osd: usize,
        _seed: u64,
    ) -> PowerLossReport {
        PowerLossReport::default()
    }

    /// Patches `buf` with this scheme's unmerged (log-buffered, not yet
    /// recycled) content for `[off, off+len)` of `block`, newest wins.
    /// Unlike [`Self::read_overlay`] this charges nothing and touches no
    /// read-path statistics: it is the recovery-side content source when
    /// replica records of a dead home are replayed onto a rebuilt block
    /// (see [`crate::replica`]). Schemes that keep no data log have no
    /// unmerged content and use this no-op default.
    fn patch_unmerged(&self, _block: BlockId, _off: u64, _len: u64, _buf: &mut [u8]) {}

    /// Downcast hook for harness-side introspection (e.g. harvesting
    /// TSUE residency statistics).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Event shim: deliver an update extent to the owning OSD's scheme.
pub fn deliver_update(world: &mut Cluster, sim: &mut Sim<Cluster>, osd: usize, req: UpdateReq) {
    let gstripe = world.core.global_stripe(req.block.file, req.block.stripe);
    let cur = world.core.owner_of(gstripe, req.block.role);
    if cur != osd {
        // Ownership moved while the extent was on the wire — the block
        // was rebuilt elsewhere (rehome) or handed back to its healed
        // home (reclaim). Forward to the current owner: one extra hop,
        // and re-evaluated on arrival in case ownership moves again.
        let now = sim.now();
        let arrival = world.core.net.transfer(
            now,
            world.core.osds[osd].node,
            world.core.osds[cur].node,
            req.data.len,
        );
        sim.schedule_at(arrival, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            deliver_update(w, sim, cur, req);
        });
        return;
    }
    if world.core.cfg.materialize
        && !world.core.osds[osd].dead
        && world
            .core
            .recovery
            .stripe_fenced(&req.block, world.core.cfg.stripe.blocks_per_stripe())
    {
        // A sibling of this stripe is being rebuilt. Admitting the write
        // now could tear the rebuild's data/parity cut (its parity delta
        // might still be on the wire at decode time), so the extent waits
        // out the rebuild — the stripe-level write fence every online
        // reconstruction needs. Timing-only runs skip the fence: without
        // content there is no cut to protect.
        sim.schedule(
            crate::FAILOVER_DELAY,
            move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                deliver_update(w, sim, osd, req);
            },
        );
        return;
    }
    if world.core.osds[osd].dead {
        // The owner died while the extent was on the wire. The client
        // re-ships the payload to the degraded-write journal (acked once
        // durable); recovery or re-sync replays it into the block later.
        let Some(client) = world.core.pending.client_of(req.op_id) else {
            // Reaped by the failover watchdog meanwhile: nobody is
            // waiting, and a reaped op was completed as a timeout error,
            // so there is nothing durable to honor.
            world.core.metrics.degraded_writes += 1;
            return;
        };
        let client_node = world.core.client_node(client);
        crate::journal::park_degraded_write(
            &mut world.core,
            sim,
            req.op_id,
            req.ext,
            req.block,
            req.off,
            req.data.len,
            Some(req.data),
            client_node,
        );
        return;
    }
    if world.core.cfg.record_arrivals {
        world
            .core
            .metrics
            .record_arrival(req.op_id, req.ext, req.block, req.off, req.data.len);
    }
    world.core.metrics.extents_received += 1;
    if let Some(issued) = world.core.pending.issued_at(req.op_id) {
        world
            .core
            .metrics
            .obs
            .update_arrival(req.op_id, osd, issued, sim.now());
    }
    // INVARIANT: scheme slots are taken for one event callback and
    // restored before return; DES events never nest.
    let mut s = world.schemes[osd].take().expect("scheme reentrancy");
    s.on_update(&mut world.core, sim, osd, req);
    world.schemes[osd] = Some(s);
}

/// Event shim: deliver a peer message to an OSD's scheme. Tagged
/// messages addressed to a dead OSD bounce as a NACK: the sender's ack
/// accounting completes (the stripe simply stays degraded until rebuilt)
/// instead of wedging the sender's in-flight state forever — the moral
/// equivalent of a connection-refused failover in the real system.
pub fn deliver_msg(world: &mut Cluster, sim: &mut Sim<Cluster>, osd: usize, msg: SchemeMsg) {
    if world.core.osds[osd].dead {
        if let SchemeMsg::DeltaForward {
            block,
            kind,
            parity_index,
            ..
        } = &msg
        {
            // A parity-bound delta died with the destination: some
            // parity no longer reflects its data. A ParityDelta is
            // addressed to exactly one parity role; a DataDelta feeds an
            // aggregation stage (CoRD's collector, TSUE's DeltaLog) that
            // fans out to every parity, so its loss may starve them all.
            // Heal-time re-sync re-encodes dirty parity from the data.
            let gstripe = world.core.global_stripe(block.file, block.stripe);
            let k = world.core.cfg.stripe.k;
            match kind {
                DeltaKind::ParityDelta => {
                    world.core.mds.mark_parity_dirty(gstripe, k + parity_index);
                }
                DeltaKind::DataDelta => {
                    for j in 0..world.core.cfg.stripe.m {
                        world.core.mds.mark_parity_dirty(gstripe, k + j);
                    }
                }
            }
        }
        let bounce = match &msg {
            SchemeMsg::DataForward { from, tag, .. }
            | SchemeMsg::DeltaForward { from, tag, .. }
            | SchemeMsg::Control { from, tag, .. } => Some((*from, *tag)),
            SchemeMsg::Ack { .. } => None,
        };
        if let Some((from, tag)) = bounce {
            world.core.metrics.nacked_msgs += 1;
            sim.schedule(
                crate::FAILOVER_DELAY,
                move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    deliver_msg(w, sim, from, SchemeMsg::Ack { tag });
                },
            );
        }
        return;
    }
    // INVARIANT: scheme slots are taken for one event callback and
    // restored before return; DES events never nest.
    let mut s = world.schemes[osd].take().expect("scheme reentrancy");
    s.on_message(&mut world.core, sim, osd, msg);
    world.schemes[osd] = Some(s);
}

/// Event shim: deliver a timer tick to an OSD's scheme.
pub fn deliver_timer(world: &mut Cluster, sim: &mut Sim<Cluster>, osd: usize, tag: u64) {
    if world.core.osds[osd].dead {
        return;
    }
    // INVARIANT: scheme slots are taken for one event callback and
    // restored before return; DES events never nest.
    let mut s = world.schemes[osd].take().expect("scheme reentrancy");
    s.on_timer(&mut world.core, sim, osd, tag);
    world.schemes[osd] = Some(s);
}

/// Event shim: serve a read extent at the owning OSD, consulting the
/// scheme's log overlay, then reply to the client.
pub fn deliver_read(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    osd: usize,
    op_id: u64,
    block: BlockId,
    off: u64,
    len: u64,
) {
    let gstripe = world.core.global_stripe(block.file, block.stripe);
    let cur = world.core.owner_of(gstripe, block.role);
    if cur != osd {
        // Ownership moved while the request was on the wire (rehome or
        // heal-time reclaim): forward to the current owner.
        let arrival = world.core.net.transfer(
            sim.now(),
            world.core.osds[osd].node,
            world.core.osds[cur].node,
            crate::ACK_BYTES,
        );
        sim.schedule_at(arrival, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            deliver_read(w, sim, cur, op_id, block, off, len);
        });
        return;
    }
    if world.core.osds[osd].dead {
        // Owner died with the read on the wire: after the failover
        // timeout the client retries it as a real degraded read, paying
        // the survivor reads, transfers, and decode.
        sim.schedule(
            crate::FAILOVER_DELAY,
            move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                client::retry_degraded_read(w, sim, op_id, block, off, len);
            },
        );
        return;
    }
    // Ask the scheme whether its logs cover the range.
    // INVARIANT: scheme slots are taken for one event callback and
    // restored before return; DES events never nest.
    let mut s = world.schemes[osd].take().expect("scheme reentrancy");
    let serve = s.read_overlay(&mut world.core, osd, block, off, len, None);
    world.schemes[osd] = Some(s);

    let done = match serve {
        ReadServe::CacheHit => {
            world.core.metrics.read_cache_hits += 1;
            sim.now() + crate::MEM_OP
        }
        ReadServe::Miss => {
            let (t, _) = world.core.osds[osd].read_block_range(sim.now(), block, off, len);
            if world.core.osds[osd].verify_range(block, off, len).is_err() {
                // The store returned rotted bytes: surface the typed
                // error as a detection and queue the block for repair at
                // the next safe point (scrub tick or final sweep) rather
                // than serving silently wrong data unflagged.
                crate::scrub::note_corrupt_block(&mut world.core, osd, block);
            }
            t
        }
    };
    // Reply with the data payload.
    let client = match world.core.pending.client_of(op_id) {
        Some(c) => c,
        None => return,
    };
    let arrival = world.core.net.transfer(
        done,
        world.core.osds[osd].node,
        world.core.client_node(client),
        len,
    );
    sim.schedule_at(arrival, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
        client::client_ack(w, sim, op_id);
    });
}

/// Correlates multi-ack exchanges (e.g. "wait for M parity acks, then
/// complete the extent") — shared by every scheme implementation.
#[derive(Debug, Default)]
pub struct AckTable {
    next: u64,
    pending: std::collections::HashMap<u64, (u64, u32)>,
}

impl AckTable {
    /// Registers an exchange needing `need` acks; returns its tag.
    ///
    /// # Panics
    /// Panics if `need == 0`.
    pub fn register(&mut self, op_id: u64, need: u32) -> u64 {
        assert!(need > 0, "ack exchange needs at least one ack");
        let tag = self.next;
        self.next += 1;
        self.pending.insert(tag, (op_id, need));
        tag
    }

    /// Records one ack; returns the op id when the exchange completes.
    pub fn ack(&mut self, tag: u64) -> Option<u64> {
        let (op, need) = self.pending.get_mut(&tag)?;
        *need -= 1;
        if *need == 0 {
            let op = *op;
            self.pending.remove(&tag);
            Some(op)
        } else {
            None
        }
    }

    /// Exchanges still waiting.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

/// A do-nothing scheme: completes updates instantly without touching parity.
///
/// Useful for testing the ECFS plumbing itself and as the lower bound no
/// real scheme can beat (it is *not* crash consistent — data blocks are
/// updated in place and parity is never maintained).
#[derive(Default)]
pub struct InstantScheme {
    updates: u64,
}

impl UpdateScheme for InstantScheme {
    fn name(&self) -> &'static str {
        "instant"
    }

    fn on_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        self.updates += 1;
        // In-place data write only; no delta, no parity.
        let t = core.osds[osd].write_block_range(
            sim.now(),
            req.block,
            req.off,
            req.data.len,
            req.data.bytes.as_deref(),
        );
        let op = req.op_id;
        sim.schedule_at(t, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            w.core.extent_done(sim, osd, op);
        });
    }

    fn on_message(
        &mut self,
        _core: &mut ClusterCore,
        _sim: &mut Sim<Cluster>,
        _osd: usize,
        _msg: SchemeMsg,
    ) {
    }

    fn flush(&mut self, _core: &mut ClusterCore, _sim: &mut Sim<Cluster>, _osd: usize) {}

    fn backlog(&self) -> u64 {
        0
    }
}

/// Helper shared by delta-based schemes: the read-modify-write that
/// produces a data delta at the data block's OSD (paper Eq. 2 prologue).
/// Returns `(completion_time, delta_chunk)`; the store is updated to the
/// new content.
pub fn rmw_data_delta(
    core: &mut ClusterCore,
    now: Time,
    osd: usize,
    block: BlockId,
    off: u64,
    data: &Chunk,
) -> (Time, Chunk) {
    // Rot in the read range would ride the delta to parity: flag it for
    // the scrubber's stripe-level parity re-encode before it is folded.
    core.osds[osd].note_delta_source(block, off, data.len);
    let (t_read, old) = core.osds[osd].read_block_range(now, block, off, data.len);
    let delta = match (&data.bytes, old) {
        (Some(new), Some(old)) => {
            // One fused pass into a pool-recycled buffer — no intermediate
            // copy of the new data.
            let mut d = BytesMut::take(new.len());
            tsue_ec::data_delta_into(&old, new, d.as_mut());
            Chunk::real(d.freeze())
        }
        _ => Chunk::ghost(data.len),
    };
    let t_compute = t_read + core.xor_time(data.len);
    let t_write =
        core.osds[osd].write_block_range(t_compute, block, off, data.len, data.bytes.as_deref());
    (t_write, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ghost_and_real() {
        let g = Chunk::ghost(16);
        assert_eq!(g.len, 16);
        assert!(g.bytes.is_none());
        let r = Chunk::real(vec![1, 2, 3]);
        assert_eq!(r.len, 3);
    }

    #[test]
    fn chunk_xor_in_folds() {
        let mut a = Chunk::real(vec![0xF0, 0x0F]);
        let b = Chunk::real(vec![0x0F, 0x0F]);
        a.xor_in(&b);
        assert_eq!(a.bytes.unwrap(), vec![0xFF, 0x00]);
    }

    #[test]
    fn chunk_xor_with_ghost_degrades_to_ghost() {
        let mut a = Chunk::real(vec![1, 2]);
        a.xor_in(&Chunk::ghost(2));
        assert!(a.bytes.is_none());
        assert_eq!(a.len, 2);
    }

    #[test]
    fn chunk_gf_scaled_matches_field() {
        let c = Chunk::real(vec![3, 5, 7]);
        let s = c.gf_scaled(9);
        let expect: Vec<u8> = [3, 5, 7].iter().map(|&x| tsue_gf::mul(9, x)).collect();
        assert_eq!(s.bytes.unwrap(), expect);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn chunk_xor_length_mismatch_panics() {
        let mut a = Chunk::ghost(3);
        a.xor_in(&Chunk::ghost(4));
    }
}
