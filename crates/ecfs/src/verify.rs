//! End-state verification: the cross-scheme correctness spine.
//!
//! Every update scheme must leave the cluster in the *same* state once its
//! logs are drained: data blocks hold exactly the bytes the arrival-ordered
//! update stream dictates, and parity blocks equal a full re-encode of the
//! data. Schemes may differ in cost, never in state. These helpers only
//! work in materialized mode ([`crate::ClusterConfig::materialize`]).

use crate::osd::BlockId;
use crate::{payload_for, Cluster};
use std::collections::HashMap;

/// Rebuilds the expected content of every data block by replaying the
/// recorded update-extent arrivals in OSD-serialized order.
///
/// # Panics
/// Panics if the cluster was not configured with `record_arrivals`.
pub fn reference_data(world: &Cluster) -> HashMap<BlockId, Vec<u8>> {
    let arrivals = world
        .core
        .metrics
        .arrivals
        .as_ref()
        // INVARIANT: verification-harness precondition — the message
        // names the config flag the caller must set.
        .expect("reference_data needs cfg.record_arrivals");
    let bs = world.core.cfg.stripe.block_size as usize;
    let mut blocks: HashMap<BlockId, Vec<u8>> = HashMap::new();
    for a in arrivals {
        let buf = blocks.entry(a.block).or_insert_with(|| vec![0u8; bs]);
        let payload = payload_for(a.op_id, a.ext, a.len as usize);
        buf[a.off as usize..(a.off + a.len) as usize].copy_from_slice(&payload);
    }
    blocks
}

/// Checks that every data block on disk matches the reference replay.
/// Returns the number of blocks compared.
///
/// # Errors
/// Returns a description of the first mismatch.
pub fn check_data_blocks(world: &Cluster) -> Result<usize, String> {
    let reference = reference_data(world);
    let mut checked = 0;
    for (block, expect) in &reference {
        let gstripe = world.core.global_stripe(block.file, block.stripe);
        let owner = world.core.owner_of(gstripe, block.role);
        world.core.osds[owner].with_block_data(*block, |got| {
            let got = got.ok_or_else(|| format!("{block:?} not materialized on OSD {owner}"))?;
            if got != expect.as_slice() {
                let first_diff = got
                    .iter()
                    .zip(expect.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                return Err(format!(
                    "{block:?} content mismatch at byte {first_diff} (osd {owner})"
                ));
            }
            Ok(())
        })?;
        checked += 1;
    }
    Ok(checked)
}

/// Checks that every stripe's parity equals a fresh encode of its data
/// blocks. Returns the number of stripes verified.
///
/// # Errors
/// Returns a description of the first inconsistent stripe.
pub fn check_parity(world: &Cluster) -> Result<usize, String> {
    let k = world.core.cfg.stripe.k;
    let m = world.core.cfg.stripe.m;
    let mut verified = 0;
    // cast: file ids are u32 everywhere (BlockId::file); file_count is
    // bounded by the configured file set, far below u32::MAX.
    for file in 0..world.core.mds.file_count() as u32 {
        let stripes = world.core.mds.file(file).stripes;
        for stripe in 0..stripes {
            let gstripe = world.core.global_stripe(file, stripe);
            let mut shards: Vec<Vec<u8>> = Vec::with_capacity(k + m);
            for role in 0..k + m {
                let owner = world.core.owner_of(gstripe, role);
                let block = BlockId { file, stripe, role };
                let data = world.core.osds[owner].with_block_data(block, |d| {
                    d.map(<[u8]>::to_vec)
                        .ok_or_else(|| format!("{block:?} missing on OSD {owner}"))
                })?;
                shards.push(data);
            }
            let ok = world
                .core
                .rs
                .verify(&shards)
                .map_err(|e| format!("verify failed: {e}"))?;
            if !ok {
                return Err(format!(
                    "file {file} stripe {stripe}: parity inconsistent with data"
                ));
            }
            verified += 1;
        }
    }
    Ok(verified)
}

/// Full end-state check: data blocks match the replay reference *and*
/// parity matches the data. Returns `(blocks, stripes)` verified.
///
/// # Errors
/// Propagates the first failure from either check.
pub fn check_consistency(world: &Cluster) -> Result<(usize, usize), String> {
    let blocks = check_data_blocks(world)?;
    let stripes = check_parity(world)?;
    Ok((blocks, stripes))
}
