//! Name → factory registry for update schemes.
//!
//! The experiment layers construct schemes *by name* ("fo", "pl",
//! "tsue", …) so a scenario file — not a code change — decides what runs
//! on each OSD. Scheme crates register themselves against ECFS's
//! [`SchemeRegistry`] (`tsue_schemes::register_baselines`,
//! `tsue_core::register_tsue`); the harness assembles a populated
//! registry once and threads it through [`crate::ClusterBuilder`].
//!
//! A factory receives [`SchemeParams`] — the device class plus the
//! scenario's free-form per-scheme knob object — and returns a per-OSD
//! constructor, so knob parsing happens once per run rather than once
//! per OSD.

use crate::{DeviceKind, UpdateScheme};
use serde::Value;

/// Per-OSD scheme constructor returned by a registry factory.
pub type MakeScheme = Box<dyn FnMut(usize) -> Box<dyn UpdateScheme>>;

/// Everything a scheme factory may condition on.
#[derive(Clone, Debug)]
pub struct SchemeParams {
    /// Device class backing every OSD of the run.
    pub device: DeviceKind,
    /// Scheme-specific knob object from the scenario (`Null` when the
    /// scenario carries no knobs).
    pub knobs: Value,
}

impl SchemeParams {
    /// Parameters with no knobs.
    pub fn bare(device: DeviceKind) -> Self {
        SchemeParams {
            device,
            knobs: Value::Null,
        }
    }
}

/// Error raised by registry lookups and factories (unknown scheme name,
/// unknown or ill-typed knob).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemeError(String);

impl SchemeError {
    /// A free-form error message.
    pub fn msg(m: impl Into<String>) -> Self {
        SchemeError(m.into())
    }
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SchemeError {}

/// Factory producing the per-OSD constructor for one scheme.
pub type SchemeFactory = fn(&SchemeParams) -> Result<MakeScheme, SchemeError>;

/// One registered scheme.
pub struct RegisteredScheme {
    /// Lower-case lookup name (`"fo"`, `"tsue"`, …).
    pub name: &'static str,
    /// Display name as used in the paper's figures (`"FO"`, `"TSUE"`).
    pub display: &'static str,
    /// One-line description for `list` output.
    pub summary: &'static str,
    factory: SchemeFactory,
}

impl RegisteredScheme {
    /// Runs the factory, yielding the per-OSD constructor.
    ///
    /// # Errors
    /// Propagates the factory's knob-validation failure.
    pub fn instantiate(&self, params: &SchemeParams) -> Result<MakeScheme, SchemeError> {
        (self.factory)(params).map_err(|e| SchemeError(format!("scheme '{}': {e}", self.name)))
    }
}

/// The scheme name → factory table.
#[derive(Default)]
pub struct SchemeRegistry {
    entries: Vec<RegisteredScheme>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a scheme.
    ///
    /// # Panics
    /// Panics when `name` is already taken — duplicate registration is a
    /// wiring bug, not a runtime condition.
    pub fn register(
        &mut self,
        name: &'static str,
        display: &'static str,
        summary: &'static str,
        factory: SchemeFactory,
    ) {
        assert!(self.get(name).is_none(), "scheme '{name}' registered twice");
        self.entries.push(RegisteredScheme {
            name,
            display,
            summary,
            factory,
        });
    }

    /// Looks up a scheme by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&RegisteredScheme> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// All registered schemes, in registration order.
    pub fn entries(&self) -> &[RegisteredScheme] {
        &self.entries
    }

    /// All registered lookup names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Instantiates `name` with `params`.
    ///
    /// # Errors
    /// Unknown names report the full name list; factory errors pass
    /// through with the scheme name prefixed.
    pub fn instantiate(
        &self,
        name: &str,
        params: &SchemeParams,
    ) -> Result<MakeScheme, SchemeError> {
        let entry = self.get(name).ok_or_else(|| {
            SchemeError(format!(
                "unknown scheme '{name}' (registered: {})",
                self.names().join(", ")
            ))
        })?;
        entry.instantiate(params)
    }
}

/// Factory helper for schemes that take no knobs: accepts `null` or an
/// empty object, rejects anything else so scenario typos fail loudly.
///
/// # Errors
/// Returns a [`SchemeError`] naming the first offending knob key.
pub fn reject_knobs(knobs: &Value) -> Result<(), SchemeError> {
    match knobs {
        Value::Null => Ok(()),
        Value::Object(entries) if entries.is_empty() => Ok(()),
        Value::Object(entries) => Err(SchemeError(format!(
            "takes no knobs, got `{}`",
            entries[0].0
        ))),
        other => Err(SchemeError(format!(
            "knobs must be an object, got {}",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstantScheme;

    fn instant_factory(params: &SchemeParams) -> Result<MakeScheme, SchemeError> {
        reject_knobs(&params.knobs)?;
        Ok(Box::new(|_| Box::new(InstantScheme::default())))
    }

    #[test]
    fn lookup_is_case_insensitive_and_ordered() {
        let mut reg = SchemeRegistry::new();
        reg.register("alpha", "ALPHA", "first", instant_factory);
        reg.register("beta", "BETA", "second", instant_factory);
        assert_eq!(reg.names(), vec!["alpha", "beta"]);
        assert_eq!(reg.get("ALPHA").unwrap().display, "ALPHA");
        assert!(reg.get("gamma").is_none());
    }

    #[test]
    fn unknown_scheme_lists_candidates() {
        let mut reg = SchemeRegistry::new();
        reg.register("alpha", "ALPHA", "first", instant_factory);
        let err = reg
            .instantiate("nope", &SchemeParams::bare(DeviceKind::Ssd))
            .err()
            .expect("must fail");
        assert!(err.to_string().contains("alpha"), "{err}");
    }

    #[test]
    fn knob_rejection_names_the_key() {
        let mut reg = SchemeRegistry::new();
        reg.register("alpha", "ALPHA", "first", instant_factory);
        let params = SchemeParams {
            device: DeviceKind::Ssd,
            knobs: Value::Object(vec![("bogus".into(), Value::UInt(1))]),
        };
        let err = reg.instantiate("alpha", &params).err().expect("must fail");
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = SchemeRegistry::new();
        reg.register("alpha", "ALPHA", "first", instant_factory);
        reg.register("alpha", "ALPHA", "again", instant_factory);
    }
}
