//! A circular on-device log region with lazy allocation — the shared
//! persistence primitive for every log-structured update scheme:
//! sequential appends on a dedicated stream, scattered reads on another,
//! wrap-around reuse without write-penalty accounting.

use crate::osd::STREAM_SCHEME_BASE;
use crate::ClusterCore;
use tsue_device::{IoKind, StreamId};
use tsue_sim::Time;

/// A circular on-device log region with lazy allocation: sequential
/// appends on a dedicated stream, random reads on another.
#[derive(Debug)]
pub struct LogRegion {
    dev_off: Option<u64>,
    capacity: u64,
    cursor: u64,
    append_stream: StreamId,
    read_stream: StreamId,
}

impl LogRegion {
    /// Creates an unallocated region of `capacity` bytes using streams
    /// `stream_base` (appends) and `stream_base + 1` (reads).
    pub fn new(capacity: u64, stream_base: StreamId) -> Self {
        LogRegion {
            dev_off: None,
            capacity,
            cursor: 0,
            append_stream: STREAM_SCHEME_BASE + stream_base,
            read_stream: STREAM_SCHEME_BASE + stream_base + 1,
        }
    }

    fn ensure(&mut self, core: &mut ClusterCore, osd: usize) -> u64 {
        *self
            .dev_off
            .get_or_insert_with(|| core.osds[osd].alloc_region(self.capacity))
    }

    /// Appends `len` bytes; returns `(completion_time, entry_offset)` with
    /// the offset *relative to the region base*. Appends are sequential and
    /// exempt from overwrite accounting (the region is reused circularly
    /// by design).
    pub fn append(
        &mut self,
        core: &mut ClusterCore,
        osd: usize,
        now: Time,
        len: u64,
    ) -> (Time, u64) {
        let base = self.ensure(core, osd);
        if self.cursor + len > self.capacity {
            self.cursor = 0; // wrap
        }
        let rel = self.cursor;
        self.cursor += len;
        let t = core.osds[osd].device.submit_log(
            now,
            IoKind::Write,
            base + rel,
            len,
            self.append_stream,
        );
        (t, rel)
    }

    /// Restart log scan: one sequential read over everything appended so
    /// far (crash-recovery framing scan from the region base to the write
    /// cursor). Free on a region that never persisted anything. Returns
    /// the scan's completion time.
    pub fn scan(&mut self, core: &mut ClusterCore, osd: usize, now: Time) -> Time {
        if self.dev_off.is_none() || self.cursor == 0 {
            return now;
        }
        let base = self.ensure(core, osd);
        core.osds[osd]
            .device
            .submit(now, IoKind::Read, base, self.cursor, self.read_stream)
    }

    /// Random read of a previously appended entry (`entry_off` relative to
    /// the region base, wrapped into the region).
    pub fn read(
        &mut self,
        core: &mut ClusterCore,
        osd: usize,
        now: Time,
        entry_off: u64,
        len: u64,
    ) -> Time {
        let base = self.ensure(core, osd);
        let off = base + (entry_off % self.capacity);
        core.osds[osd]
            .device
            .submit(now, IoKind::Read, off, len, self.read_stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterBuilder, InstantScheme};

    fn test_core() -> Cluster {
        ClusterBuilder::ssd(4, 2, 1)
            .osds(8)
            .file_size_per_client(1 << 20)
            .scheme_fn(|_| Box::new(InstantScheme::default()))
            .build()
    }

    #[test]
    fn appends_are_sequential_and_wrap() {
        let mut world = test_core();
        let core = &mut world.core;
        let mut region = LogRegion::new(16 << 10, 40);
        let mut offs = Vec::new();
        for _ in 0..5 {
            let (_, rel) = region.append(core, 0, 0, 4 << 10);
            offs.push(rel);
        }
        assert_eq!(offs, vec![0, 4096, 8192, 12288, 0], "fifth append wraps");
        // Appends use submit_log: no overwrite penalty even after the wrap.
        assert_eq!(core.osds[0].device.stats().overwrite_ops, 0);
        assert!(core.osds[0].device.stats().seq_ops >= 3);
    }

    #[test]
    fn reads_wrap_into_the_region() {
        let mut world = test_core();
        let core = &mut world.core;
        let mut region = LogRegion::new(8 << 10, 42);
        region.append(core, 1, 0, 1024);
        let t1 = region.read(core, 1, 0, 0, 512);
        let t2 = region.read(core, 1, t1, (8 << 10) + 100, 512); // wraps
        assert!(t2 > t1);
        assert_eq!(core.osds[1].device.stats().read_ops, 2);
    }

    #[test]
    fn region_is_allocated_lazily_and_once() {
        let mut world = test_core();
        let core = &mut world.core;
        let mut region = LogRegion::new(4 << 10, 44);
        let (_, a) = region.append(core, 2, 0, 100);
        let (_, b) = region.append(core, 2, 0, 100);
        assert_eq!(a, 0);
        assert_eq!(b, 100, "relative offsets advance within one region");
    }
}
