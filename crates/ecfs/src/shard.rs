//! Fine-grained sharded maps for the structures worker threads touch.
//!
//! [`ShardedMap`] splits a hash map into a fixed number of
//! independently-locked segments (`parking_lot::RwLock` per shard, in
//! the spirit of TFS's `chashmap`), keyed by **stripe group**: stripes
//! are binned in runs of [`STRIPE_GROUP`] so the ranges one recycle or
//! rebuild job touches land in one segment, and jobs on different
//! stripe groups proceed without contending.
//!
//! Two access planes, matching the cluster's two execution modes:
//!
//! * **Sequential (coordinator)** — `&mut self` methods (`get_mut`,
//!   `insert`, `remove`) go through [`RwLock::get_mut`], which is a
//!   plain field access: the single-threaded hot path pays only the
//!   shard-index hash, no atomics.
//! * **Shared (workers inside a tick barrier)** — `&self` methods
//!   (`read`, `with`, `with_mut`) take the segment lock. Determinism
//!   does not come from the locks (they only make racing mutations
//!   *safe*); it comes from the tick-barrier rules in
//!   [`tsue_sim::exec`]: jobs write disjoint keys/ranges, so lock
//!   acquisition order cannot change any observable byte.

use parking_lot::RwLock;
use std::hash::Hash;

/// Number of lock segments. A small power of two: enough that eight
/// workers rarely collide, small enough that draining every shard
/// (iteration, len) stays cheap.
pub const SHARDS: usize = 16;

/// Stripes per shard-key bin: consecutive stripes share a segment so
/// one stripe-group job stays on one lock.
pub const STRIPE_GROUP: u64 = 4;

/// Maps a key to its lock segment.
///
/// Implementations bin by stripe group where a stripe index is
/// available, so per-stripe-group jobs are segment-disjoint.
pub trait ShardKey: Hash + Eq {
    /// Segment index in `0..SHARDS`.
    fn shard(&self) -> usize;
}

fn spread(x: u64) -> usize {
    // Fibonacci hashing: cheap, and adjacent groups land on distinct
    // segments.
    (x.wrapping_mul(0x9e3779b97f4a7c15) >> 59) as usize % SHARDS
}

impl ShardKey for crate::osd::BlockId {
    fn shard(&self) -> usize {
        spread((self.stripe / STRIPE_GROUP) ^ ((self.file as u64) << 32))
    }
}

/// `(global stripe, role)` keys — the MDS rehome/dirty-parity tables.
impl ShardKey for (u64, usize) {
    fn shard(&self) -> usize {
        spread(self.0 / STRIPE_GROUP)
    }
}

/// `(file, page)` keys — the MDS write/update bitmap.
impl ShardKey for (crate::mds::FileId, u64) {
    fn shard(&self) -> usize {
        spread((self.1 / STRIPE_GROUP) ^ ((self.0 as u64) << 32))
    }
}

/// A hash map split into [`SHARDS`] independently-locked segments.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<std::collections::HashMap<K, V>>>,
}

impl<K: ShardKey, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: ShardKey, V> ShardedMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(Default::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard_of(&self, key: &K) -> &RwLock<std::collections::HashMap<K, V>> {
        &self.shards[key.shard()]
    }

    // ---- sequential plane (&mut self: no lock traffic) ----

    /// Inserts, returning the previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let s = key.shard();
        self.shards[s].get_mut().insert(key, value)
    }

    /// Removes, returning the value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.shards[key.shard()].get_mut().remove(key)
    }

    /// Mutable value access on the sequential plane.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.shards[key.shard()].get_mut().get_mut(key)
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        for s in &mut self.shards {
            s.get_mut().clear();
        }
    }

    // ---- shared plane (&self: per-segment locks) ----

    /// Copies the value out under a read lock.
    pub fn read(&self, key: &K) -> Option<V>
    where
        V: Copy,
    {
        self.shard_of(key).read().get(key).copied()
    }

    /// Runs `f` over the value (if present) under a read lock.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(Option<&V>) -> R) -> R {
        f(self.shard_of(key).read().get(key))
    }

    /// Runs `f` over the value (if present) under the segment's write
    /// lock — the worker-side mutation primitive. Jobs inside one tick
    /// barrier must keep their writes disjoint (or commutative) per the
    /// determinism rules in [`tsue_sim::exec`].
    pub fn with_mut<R>(&self, key: &K, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        f(self.shard_of(key).write().get_mut(key))
    }

    /// Inserts under the segment's write lock (worker plane); returns
    /// the previous value.
    pub fn insert_shared(&self, key: K, value: V) -> Option<V> {
        let s = key.shard();
        self.shards[s].write().insert(key, value)
    }

    /// Removes under the segment's write lock (worker plane).
    pub fn remove_shared(&self, key: &K) -> Option<V> {
        self.shard_of(key).write().remove(key)
    }

    /// Whether `key` is present (read lock).
    pub fn contains(&self, key: &K) -> bool {
        self.shard_of(key).read().contains_key(key)
    }

    /// Total entries across all segments.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no segment has entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// All keys, sorted — segment iteration order is arbitrary, so every
    /// caller that schedules work from a listing sorts here.
    pub fn keys_sorted(&self) -> Vec<K>
    where
        K: Ord + Clone,
    {
        let mut out: Vec<K> = Vec::new();
        for s in &self.shards {
            out.extend(s.read().keys().cloned());
        }
        out.sort_unstable();
        out
    }

    /// All entries, sorted by key.
    pub fn entries_sorted(&self) -> Vec<(K, V)>
    where
        K: Ord + Clone,
        V: Clone,
    {
        let mut out: Vec<(K, V)> = Vec::new();
        for s in &self.shards {
            out.extend(s.read().iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osd::BlockId;

    fn bid(stripe: u64, role: usize) -> BlockId {
        BlockId {
            file: 0,
            stripe,
            role,
        }
    }

    #[test]
    fn sequential_roundtrip() {
        let mut m: ShardedMap<BlockId, u32> = ShardedMap::new();
        assert!(m.is_empty());
        m.insert(bid(0, 0), 1);
        m.insert(bid(100, 3), 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.read(&bid(0, 0)), Some(1));
        *m.get_mut(&bid(100, 3)).unwrap() = 9;
        assert_eq!(m.remove(&bid(100, 3)), Some(9));
        assert!(!m.contains(&bid(100, 3)));
    }

    #[test]
    fn stripe_group_shares_a_segment() {
        // Stripes in one group (and their roles) always co-locate.
        for g in 0..64u64 {
            let base = bid(g * STRIPE_GROUP, 0).shard();
            for s in 0..STRIPE_GROUP {
                for role in 0..4 {
                    assert_eq!(bid(g * STRIPE_GROUP + s, role).shard(), base);
                }
            }
        }
    }

    #[test]
    fn groups_spread_over_segments() {
        let mut used = std::collections::HashSet::new();
        for g in 0..64u64 {
            used.insert(bid(g * STRIPE_GROUP, 0).shard());
        }
        assert!(
            used.len() >= SHARDS / 2,
            "only {} segments used",
            used.len()
        );
    }

    #[test]
    fn keys_sorted_is_deterministic() {
        let mut m: ShardedMap<(u64, usize), usize> = ShardedMap::new();
        for s in (0..50u64).rev() {
            m.insert((s, (s % 3) as usize), s as usize);
        }
        let keys = m.keys_sorted();
        assert_eq!(keys.len(), 50);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_disjoint_mutations_conserve_entries() {
        let m: ShardedMap<(u64, usize), usize> = ShardedMap::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..100u64 {
                        m.insert_shared((t * 1000 + i, 0), t as usize);
                    }
                });
            }
        });
        assert_eq!(m.len(), 800);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..50u64 {
                        m.remove_shared(&(t * 1000 + i, 0));
                    }
                });
            }
        });
        assert_eq!(m.len(), 400);
    }
}
