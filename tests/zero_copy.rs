//! Zero-copy invariants of the data plane, measured with the
//! [`tsue_buf`] copy/pool counters.
//!
//! The headline guarantee: the **data-log stage** — a client write landing
//! at its OSD, appending to the DataLog index, and acking — performs zero
//! deep copies of the payload. The buffer the payload was born in is the
//! buffer the log holds, shared by refcount.

use tsue_repro::buf;
use tsue_repro::core::Tsue;
use tsue_repro::ecfs::scheme::{deliver_update, UpdateReq};
use tsue_repro::ecfs::{BlockId, Chunk, Cluster, ClusterBuilder};
use tsue_repro::sim::Sim;

fn materialized_tsue_cluster() -> Cluster {
    ClusterBuilder::ssd(4, 2, 1)
        .materialize(true)
        .file_size_per_client(4 << 20)
        .scheme_fn(|_| Box::new(Tsue::ssd()))
        .build()
}

/// A pooled payload chunk, generated in place (no copy, by construction).
fn payload(len: usize, fill: u8) -> Chunk {
    let mut b = buf::BytesMut::take(len);
    b.as_mut().fill(fill);
    Chunk::real(b.freeze())
}

/// N client writes through the TSUE data-log stage: zero payload copies.
#[test]
fn data_log_stage_performs_zero_payload_copies_per_client_write() {
    let mut world = materialized_tsue_cluster();
    let mut sim: Sim<Cluster> = Sim::new();
    let block = BlockId {
        file: 0,
        stripe: 0,
        role: 0,
    };
    let gstripe = world.core.global_stripe(0, 0);
    let owner = world.core.owner_of(gstripe, 0);

    let before = buf::stats();
    for i in 0..32u64 {
        // Disjoint, non-adjacent ranges: folding happens in the index
        // without any merge copies (adjacent-coalescing concatenation is
        // a separate, counted path).
        let req = UpdateReq {
            op_id: i,
            ext: 0,
            block,
            off: i * 8192,
            data: payload(4096, i as u8),
        };
        deliver_update(&mut world, &mut sim, owner, req);
    }
    // Drain the persist/ack events of the appends (the background seal
    // timer is minutes of virtual time away; no recycle runs here).
    sim.run_until(&mut world, 1_000_000);
    let window = buf::stats().since(&before);

    assert_eq!(
        window.deep_copies, 0,
        "data-log append path must not copy payload bytes: {window:?}"
    );
    assert_eq!(window.bytes_copied, 0);

    // The counters surface through ClusterMetrics for harnesses.
    world.core.metrics.absorb_buf_stats(window);
    assert_eq!(world.core.metrics.payload_copies, 0);
    assert_eq!(world.core.metrics.payload_bytes_copied, 0);

    // And the log really holds the content (overlay sees the newest data).
    let scheme = world.schemes[owner].take().expect("scheme present");
    let mut got = vec![0u8; 4096];
    let mut probe = scheme;
    let serve = probe.read_overlay(&mut world.core, owner, block, 0, 4096, Some(&mut got));
    assert_eq!(serve, tsue_repro::ecfs::scheme::ReadServe::CacheHit);
    assert!(got.iter().all(|&b| b == 0), "first write fills with 0");
    world.schemes[owner] = Some(probe);
}

/// The full two-stage pipeline in steady state recycles buffers through
/// the pool instead of allocating: after a warm-up run, pool hits
/// dominate misses.
#[test]
fn steady_state_recycle_runs_out_of_the_pool() {
    let mut world = materialized_tsue_cluster();
    let mut sim: Sim<Cluster> = Sim::new();
    let gstripe = world.core.global_stripe(0, 0);
    let owner = world.core.owner_of(gstripe, 0);
    let block = BlockId {
        file: 0,
        stripe: 0,
        role: 0,
    };

    // Warm-up: fill pools, trigger seals/recycles via flush.
    for i in 0..64u64 {
        let req = UpdateReq {
            op_id: i,
            ext: 0,
            block,
            off: (i % 16) * 4096,
            data: payload(4096, i as u8),
        };
        deliver_update(&mut world, &mut sim, owner, req);
    }
    world.flush_all(&mut sim);

    // Measured window: same traffic again, now against warm pools.
    let before = buf::stats();
    for i in 64..128u64 {
        let req = UpdateReq {
            op_id: i,
            ext: 0,
            block,
            off: (i % 16) * 4096,
            data: payload(4096, i as u8),
        };
        deliver_update(&mut world, &mut sim, owner, req);
    }
    world.flush_all(&mut sim);
    let window = buf::stats().since(&before);

    assert!(
        window.pool_hits > 0,
        "steady-state traffic must reuse pooled buffers: {window:?}"
    );
    // Adjacent writes coalesce by growing the run in place (plain Vec
    // growth, not pool draws), so the pool serves the remaining scratch
    // traffic; hits must still dominate misses by a wide margin.
    assert!(
        window.pool_hits >= 4 * window.pool_misses.max(1),
        "pool hit rate must dominate in steady state: {window:?}"
    );
}
