//! The declarative scenario API, end to end: serde round-trips, registry
//! coverage, knob validation, and the bundled golden scenarios.

use proptest::prelude::*;
use tsue_repro::bench::{
    bundled_scenarios, default_registry, run_scenario, ScenarioOutcome, ScenarioSpec, SchemeSpec,
    TraceKind,
};
use tsue_repro::ecfs::{DeviceKind, SchemeParams};

/// Every scheme the paper evaluates is constructible by name.
#[test]
fn all_seven_schemes_constructible_by_name() {
    let reg = default_registry();
    let names = ["fo", "fl", "pl", "plr", "parix", "cord", "tsue"];
    assert_eq!(reg.names(), names.to_vec(), "registration order is fixed");
    for name in names {
        for device in [DeviceKind::Ssd, DeviceKind::Hdd] {
            let mut make = reg
                .instantiate(name, &SchemeParams::bare(device))
                .unwrap_or_else(|e| panic!("{name} on {device:?}: {e}"));
            let scheme = make(0);
            assert_eq!(scheme.backlog(), 0, "{name}: fresh scheme has no backlog");
        }
    }
}

/// Unknown names and typo'd knobs must fail loudly, naming the problem.
#[test]
fn unknown_scheme_and_knob_typos_are_rejected() {
    let reg = default_registry();
    let spec = ScenarioSpec::ssd(
        "bad-scheme",
        TraceKind::Ten,
        4,
        2,
        4,
        SchemeSpec::named("tseu"),
    );
    let err = spec.validate(&reg).expect_err("typo'd scheme must fail");
    assert!(err.contains("tseu") && err.contains("tsue"), "{err}");

    let knobs = serde_json::value_from_str(r#"{"maxunits": 2}"#).unwrap();
    let spec = ScenarioSpec::ssd(
        "bad-knob",
        TraceKind::Ten,
        4,
        2,
        4,
        SchemeSpec::with_knobs("tsue", knobs),
    );
    let err = spec.validate(&reg).expect_err("typo'd knob must fail");
    assert!(err.contains("maxunits"), "{err}");

    let spec = ScenarioSpec::ssd(
        "too-wide",
        TraceKind::Ten,
        12,
        8,
        4,
        SchemeSpec::named("fo"),
    );
    let err = spec.validate(&reg).expect_err("RS(12,8) needs > 16 OSDs");
    assert!(err.contains("OSD"), "{err}");
}

/// A scenario JSON with an unknown top-level field must not load.
#[test]
fn scenario_files_reject_unknown_fields() {
    let err = serde_json::from_str::<ScenarioSpec>(
        r#"{
            "name": "x", "device": "ssd", "k": 4, "m": 2, "clients": 4,
            "trace": "ten", "scheme": {"name": "fo"}, "duration_sm": 100
        }"#,
    )
    .expect_err("duration_sm is a typo of duration_ms");
    assert!(err.to_string().contains("duration_sm"), "{err}");
}

/// Every bundled scenario parses, validates, and re-serializes to an
/// equivalent spec.
#[test]
fn bundled_scenarios_parse_and_validate() {
    let reg = default_registry();
    assert!(bundled_scenarios().len() >= 2, "at least two bundled files");
    for (path, json) in bundled_scenarios() {
        let spec: ScenarioSpec =
            serde_json::from_str(json).unwrap_or_else(|e| panic!("{path} does not parse: {e}"));
        spec.validate(&reg)
            .unwrap_or_else(|e| panic!("{path} does not validate: {e}"));
        let reprinted = serde_json::to_string_pretty(&spec).expect("spec serializes");
        let back: ScenarioSpec = serde_json::from_str(&reprinted).expect("reprint parses");
        assert_eq!(back, spec, "{path} round-trips");
    }
}

/// Golden run: the bundled smoke scenario executes deterministically
/// under its fixed seed — bit-identical metrics across runs — and the
/// emitted `{spec, result}` outcome round-trips through JSON.
#[test]
fn golden_smoke_scenario_runs_deterministically() {
    let (path, json) = &bundled_scenarios()[0];
    assert!(path.ends_with("smoke.json"), "smoke scenario is first");
    let spec: ScenarioSpec = serde_json::from_str(json).expect("smoke parses");

    let a = run_scenario(&spec).expect("smoke runs");
    let b = run_scenario(&spec).expect("smoke reruns");
    assert!(a.iops > 0.0, "smoke completes ops");
    assert_eq!(a.k, spec.k);
    assert_eq!(a.m, spec.m);
    assert_eq!(a.scheme, "TSUE");
    assert!(a.flush_s > 0.0, "smoke drains its logs (flush_after)");
    assert_eq!(a.iops.to_bits(), b.iops.to_bits(), "deterministic IOPS");
    assert_eq!(a.mean_latency_us.to_bits(), b.mean_latency_us.to_bits());
    assert_eq!(a.per_second, b.per_second);
    assert_eq!(a.cache_hits, b.cache_hits);
    assert_eq!(a.dev.rw_ops, b.dev.rw_ops);
    assert_eq!(a.mem_peak, b.mem_peak);

    let outcome = ScenarioOutcome {
        spec: spec.clone(),
        result: a,
    };
    let text = serde_json::to_string_pretty(&outcome).expect("outcome serializes");
    let back: ScenarioOutcome = serde_json::from_str(&text).expect("outcome parses");
    assert_eq!(back.spec, spec, "outcome carries the reproducing spec");
}

/// Builds an arbitrary-but-valid spec from drawn primitives
/// (`opt_mask` bit 8 selects the HDD device class).
#[allow(clippy::too_many_arguments)]
fn spec_from(
    seed_bits: u64,
    k: usize,
    m: usize,
    clients: usize,
    trace_idx: usize,
    scheme_idx: usize,
    knob_units: u64,
    opt_mask: u16,
) -> ScenarioSpec {
    let device_hdd = opt_mask & 256 != 0;
    let duration = 1 + seed_bits % 100_000;
    let traces = TraceKind::all();
    let trace = traces[trace_idx % traces.len()];
    let names = ["fo", "fl", "pl", "plr", "parix", "cord", "tsue"];
    let name = names[scheme_idx % names.len()];
    let scheme = if name == "tsue" && knob_units > 0 {
        SchemeSpec::with_knobs(
            "tsue",
            serde::Value::Object(vec![
                ("max_units".into(), serde::Value::UInt(knob_units)),
                ("compress_deltas".into(), serde::Value::Bool(device_hdd)),
            ]),
        )
    } else {
        SchemeSpec::named(name)
    };
    let mut s = ScenarioSpec::ssd("prop", trace, k, m, clients, scheme);
    if device_hdd {
        s.device = DeviceKind::Hdd;
    }
    // Exercise present/absent combinations of every optional field.
    if opt_mask & 1 != 0 {
        s.osds = Some(k + m + (seed_bits % 7) as usize);
    }
    if opt_mask & 2 != 0 {
        s.block_kib = Some(64 << (seed_bits % 5));
    }
    if opt_mask & 4 != 0 {
        s.duration_ms = Some(duration);
    }
    if opt_mask & 8 != 0 {
        s.ops_per_client = Some(1 + seed_bits % 1000);
    }
    if opt_mask & 16 != 0 {
        s.file_mb = Some(1 + seed_bits % 64);
    }
    if opt_mask & 32 != 0 {
        s.seed = Some(seed_bits);
    }
    if opt_mask & 64 != 0 {
        s.flush_after = Some(seed_bits & 1 == 0);
    }
    if opt_mask & 128 != 0 {
        s.net = Some(tsue_repro::net::NetSpec::infiniband_40g());
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// spec → JSON → spec is the identity, for any field combination.
    #[test]
    fn scenario_spec_round_trips_through_json(
        seed_bits: u64,
        k in 1usize..16,
        m in 1usize..8,
        clients in 1usize..64,
        trace_idx in 0usize..16,
        scheme_idx in 0usize..16,
        knob_units in 0u64..8,
        opt_mask: u16,
    ) {
        let spec = spec_from(
            seed_bits, k, m, clients, trace_idx, scheme_idx, knob_units, opt_mask,
        );
        let compact = serde_json::to_string(&spec).expect("spec serializes");
        let back: ScenarioSpec = serde_json::from_str(&compact)
            .unwrap_or_else(|e| panic!("compact reparse failed: {e}\n{compact}"));
        prop_assert_eq!(&back, &spec);
        let pretty = serde_json::to_string_pretty(&spec).expect("spec serializes");
        let back: ScenarioSpec = serde_json::from_str(&pretty)
            .unwrap_or_else(|e| panic!("pretty reparse failed: {e}\n{pretty}"));
        prop_assert_eq!(&back, &spec);
    }
}
