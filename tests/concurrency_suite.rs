//! Concurrency suite: the worker pool must be **observationally
//! invisible**. The tick-barrier model (`tsue_sim::exec`) promises that
//! parallelism lives only inside single DES events and never touches
//! the clock, so a scenario's `{spec, result}` pair is byte-identical
//! at any `--threads` value — the property every test here pins down.

use proptest::prelude::*;
use tsue_repro::bench::{default_registry, run_scenario_threads, ScenarioOutcome, ScenarioSpec};
use tsue_repro::ecfs::{Mds, ShardKey, ShardedMap};

/// Runs `scenario_json` at each thread count and asserts the serialized
/// `{spec, result}` outcomes are byte-identical.
fn assert_thread_invariant(scenario_json: &str, threads: &[usize]) {
    let spec: ScenarioSpec = serde_json::from_str(scenario_json).expect("scenario parses");
    let registry = default_registry();
    let mut baseline: Option<String> = None;
    for &t in threads {
        let result = run_scenario_threads(&spec, &registry, t).expect("scenario runs");
        let outcome = ScenarioOutcome {
            spec: spec.clone(),
            result,
        };
        let got = serde_json::to_string_pretty(&outcome).expect("outcome serializes");
        match &baseline {
            None => baseline = Some(got),
            Some(want) => {
                let diff_at = got
                    .bytes()
                    .zip(want.bytes())
                    .position(|(a, b)| a != b)
                    .unwrap_or(got.len().min(want.len()));
                assert!(
                    &got == want,
                    "threads={t} diverged from threads={} at byte {diff_at}",
                    threads[0],
                );
            }
        }
    }
}

/// The golden smoke scenario (TSUE, flushed — all three log layers plus
/// the recycle pipeline) at 1, 2, and 8 workers.
#[test]
fn smoke_outcome_is_thread_invariant() {
    assert_thread_invariant(include_str!("../scenarios/smoke.json"), &[1, 2, 8]);
}

/// The two-layer ablation path (no DeltaLog) at 1, 2, and 8 workers.
#[test]
fn ablation_o3_outcome_is_thread_invariant() {
    assert_thread_invariant(
        include_str!("../scenarios/tsue_ablation_o3.json"),
        &[1, 2, 8],
    );
}

/// The scripted rack-failure scenario: drain gates, online rebuild
/// (chunk-split decode), journal replay, and heal-time re-sync must all
/// stay bit-reproducible under the pool.
#[test]
fn rack_failure_outcome_is_thread_invariant() {
    assert_thread_invariant(
        include_str!("../scenarios/rack_failure_online.json"),
        &[1, 4],
    );
}

proptest! {
    /// Concurrent per-shard MDS mutations conserve entry counts: disjoint
    /// rehome/reclaim batches racing on the shared plane never lose or
    /// duplicate a block, whatever the lock interleaving.
    #[test]
    fn concurrent_mds_mutations_conserve_block_counts(
        per_thread in 1usize..48,
        reclaim_every in 2u64..5,
        stripe_stride in 1u64..9,
    ) {
        let mds = Mds::new(16);
        let threads = 8u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let mds = &mds;
                s.spawn(move || {
                    for i in 0..per_thread as u64 {
                        // Thread-disjoint key ranges (the determinism rule
                        // for worker jobs inside one tick barrier).
                        let gstripe = (t * 10_000 + i) * stripe_stride;
                        mds.rehome_shared(gstripe, (i % 4) as usize, (t % 16) as usize);
                        if i % reclaim_every == 0 {
                            mds.reclaim_shared(gstripe, (i % 4) as usize);
                        }
                    }
                });
            }
        });
        let kept_per_thread = (0..per_thread as u64)
            .filter(|i| i % reclaim_every != 0)
            .count();
        prop_assert_eq!(mds.rehomed_count(), kept_per_thread * threads as usize);
        // The sorted listing sees exactly the surviving keys.
        prop_assert_eq!(mds.rehomed_entries().len(), mds.rehomed_count());
    }

    /// The sharded map conserves entries under racing inserts/removes on
    /// disjoint key sets, and its sorted views stay deterministic.
    #[test]
    fn sharded_map_conserves_entries(per_thread in 1usize..64) {
        let map: ShardedMap<(u64, usize), u32> = ShardedMap::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let map = &map;
                s.spawn(move || {
                    for i in 0..per_thread as u64 {
                        map.insert_shared((t * 1_000_000 + i, 0), t as u32);
                    }
                });
            }
        });
        prop_assert_eq!(map.len(), per_thread * 8);
        let keys = map.keys_sorted();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        // Every key resolves through its shard to the value written.
        for k in &keys {
            let t = (k.0 / 1_000_000) as u32;
            prop_assert_eq!(map.read(k), Some(t));
            prop_assert!(k.shard() < tsue_repro::ecfs::SHARDS);
        }
    }
}
