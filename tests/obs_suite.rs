//! The observability layer, end to end: histogram/series determinism
//! across worker-pool widths, op-lifecycle trace coverage on a faulted
//! run, and the per-phase latency snapshots in fault reports.

use tsue_repro::bench::{
    bundled_scenarios, default_registry, run_scenario_threads, run_scenario_traced, ScenarioSpec,
};

fn bundled_spec(name: &str) -> ScenarioSpec {
    let (_, json) = bundled_scenarios()
        .iter()
        .find(|(p, _)| p.ends_with(name))
        .expect("scenario is bundled");
    serde_json::from_str(json).expect("bundled scenario parses")
}

/// Metric recording lives entirely on the single-threaded coordinator
/// (workers only run byte kernels), so every histogram bucket, stage
/// span, and series sample must be byte-identical at any thread count.
#[test]
fn obs_sections_bit_identical_across_thread_counts() {
    let spec = bundled_spec("smoke.json");
    let registry = default_registry();
    let reference = run_scenario_threads(&spec, &registry, 1).expect("scenario runs");
    let ref_obs = serde_json::to_string_pretty(&reference.obs).expect("obs serializes");
    let ref_all = serde_json::to_string_pretty(&reference).expect("result serializes");
    assert!(reference.latency.count > 0, "smoke completes client ops");
    for threads in [2usize, 8] {
        let got = run_scenario_threads(&spec, &registry, threads).expect("scenario runs");
        let obs = serde_json::to_string_pretty(&got.obs).expect("obs serializes");
        assert_eq!(ref_obs, obs, "obs section diverged at threads={threads}");
        let all = serde_json::to_string_pretty(&got).expect("result serializes");
        assert_eq!(ref_all, all, "full result diverged at threads={threads}");
    }
}

/// A faulted, traced run emits at least one complete Chrome span per op
/// class the run actually completed, and every event is a well-formed
/// complete (`"X"`) event.
#[test]
fn faulted_trace_covers_every_completed_op_class() {
    let spec = bundled_spec("rack_failure_online.json");
    let (result, trace) =
        run_scenario_traced(&spec, &default_registry(), 1, true).expect("scenario runs");
    let json = trace.expect("tracing was enabled");
    let v = serde_json::value_from_str(&json).expect("trace JSON parses");

    let serde::Value::Array(events) = v.get("traceEvents").expect("traceEvents present") else {
        panic!("traceEvents is not an array");
    };
    assert!(!events.is_empty(), "trace must contain spans");
    let mut op_spans: Vec<&str> = Vec::new();
    for e in events {
        assert_eq!(
            e.get("ph"),
            Some(&serde::Value::Str("X".into())),
            "all emitted events are complete spans"
        );
        for key in ["name", "cat", "ts", "dur", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing '{key}'");
        }
        if let (Some(serde::Value::Str(cat)), Some(serde::Value::Str(name))) =
            (e.get("cat"), e.get("name"))
        {
            if cat == "op" && !op_spans.contains(&name.as_str()) {
                op_spans.push(name);
            }
        }
    }
    // The rack kill guarantees recovery decodes and degraded traffic on
    // top of the normal update/read classes.
    let decode = result.obs.class("recovery_decode").expect("class present");
    assert!(decode.count > 0, "the rack kill rebuilt blocks");
    for class in &result.obs.classes {
        if class.count > 0 {
            assert!(
                op_spans.contains(&class.name.as_str()),
                "completed {} '{}' ops but the trace has no such span",
                class.count,
                class.name
            );
        }
    }
}

/// Fault phases carry the client-latency story around the failure:
/// a populated before/during snapshot pair and a backfilled after-view
/// once the run completes.
#[test]
fn fault_phases_snapshot_client_latency_around_the_kill() {
    let spec = bundled_spec("rack_failure_online.json");
    let result = run_scenario_threads(&spec, &default_registry(), 1).expect("scenario runs");
    let rec = result.recovery.as_ref().expect("fault plan ran");
    assert!(!rec.phases.is_empty());
    for p in &rec.phases {
        assert!(
            p.lat_before.count > 0,
            "clients completed ops before the kill"
        );
        assert!(
            p.lat_during.count > 0,
            "clients kept completing ops during recovery"
        );
        let after = p.lat_after.as_ref().expect("harness backfills lat_after");
        // before + during + after partition the run's client completions.
        let total = p.lat_before.count + p.lat_during.count + after.count;
        assert_eq!(
            total, result.latency.count,
            "phase windows partition the run"
        );
    }
    // The per-node/per-rack series sampled on the default cadence.
    let series = &result.obs.series;
    assert_eq!(series.cadence_ms, 250);
    assert!(!series.samples.is_empty(), "series sampled during the run");
    let last = series.samples.last().unwrap();
    assert_eq!(last.nodes.len(), spec.osds());
    assert_eq!(last.racks.len(), 4, "rack4 topology");
    assert!(
        last.racks.iter().any(|r| r.up_bytes > 0),
        "rack-aware placement pushes bytes through uplinks"
    );
    assert!(
        last.racks.iter().all(|r| (0.0..=1.0).contains(&r.up_util)),
        "utilization is normalized"
    );
}
