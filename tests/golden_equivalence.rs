//! Golden equivalence: the zero-copy data plane must be **observationally
//! invisible**. `tests/golden/*.json` holds the `{spec, result}` outcomes
//! captured from the pre-refactor (`Vec`-chunk, allocating-kernel) build;
//! re-running the same scenarios through the shared-buffer path must
//! reproduce them byte for byte — same virtual-time behavior, same device
//! and network accounting, same serialized output.
//!
//! To re-capture after an *intentional* behavior change:
//! `tsuectl run scenarios/<name>.json --out tests/golden`.

use tsue_repro::bench::{run_scenario, ScenarioOutcome, ScenarioSpec};

fn assert_golden(scenario_json: &str, golden_json: &str) {
    let spec: ScenarioSpec = serde_json::from_str(scenario_json).expect("scenario parses");
    let result = run_scenario(&spec).expect("scenario runs");
    let outcome = ScenarioOutcome { spec, result };
    let got = serde_json::to_string_pretty(&outcome).expect("outcome serializes");
    let want = golden_json;
    assert!(
        got == want,
        "zero-copy run diverged from the pre-refactor golden capture.\n\
         First differing byte at {}.\n--- golden ---\n{}\n--- got ---\n{}",
        got.bytes()
            .zip(want.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(got.len().min(want.len())),
        &want[..want.len().min(2000)],
        &got[..got.len().min(2000)],
    );
}

/// `scenarios/smoke.json` (TSUE, flushed — exercises all three log layers
/// plus the recycle pipeline) is bit-identical to the pre-refactor run.
#[test]
fn smoke_scenario_matches_pre_refactor_golden() {
    assert_golden(
        include_str!("../scenarios/smoke.json"),
        include_str!("golden/smoke.json"),
    );
}

/// `scenarios/tsue_ablation_o3.json` (breakdown level 3: log pool on, no
/// DeltaLog, single pool — the two-layer path) is bit-identical too.
#[test]
fn ablation_o3_scenario_matches_pre_refactor_golden() {
    assert_golden(
        include_str!("../scenarios/tsue_ablation_o3.json"),
        include_str!("golden/tsue-ablation-o3.json"),
    );
}

/// GF kernel choice never changes simulation outcomes: both golden
/// scenarios reproduce the captured `{spec, result}` bytes on **every**
/// kernel tier the host supports — scalar reference, portable, and
/// whatever SIMD tiers dispatch can reach. One test fn (not one per
/// tier) so the process-global tier switch can't race assertions about
/// which tier is active.
#[test]
fn goldens_are_bit_identical_on_every_kernel_tier() {
    use tsue_repro::gf::{set_kernel_tier, KernelTier};
    for tier in KernelTier::available() {
        set_kernel_tier(tier).unwrap();
        assert_golden(
            include_str!("../scenarios/smoke.json"),
            include_str!("golden/smoke.json"),
        );
        assert_golden(
            include_str!("../scenarios/tsue_ablation_o3.json"),
            include_str!("golden/tsue-ablation-o3.json"),
        );
    }
    set_kernel_tier(KernelTier::best()).unwrap();
}
