//! The fault & topology subsystem, end to end: rack kills under both
//! placement policies, the §5.4 recovery-bandwidth trend under online
//! load, and per-tier traffic accounting through the scenario API.

use tsue_repro::bench::{bundled_scenarios, run_scenario, ScenarioSpec, SchemeSpec};
use tsue_repro::ecfs::PlacementKind;

/// The bundled rack-failure scenario, parsed fresh.
fn rack_failure_spec() -> ScenarioSpec {
    let (_, json) = bundled_scenarios()
        .iter()
        .find(|(p, _)| p.ends_with("rack_failure_online.json"))
        .expect("rack failure scenario is bundled");
    serde_json::from_str(json).expect("bundled scenario parses")
}

/// Rack-aware placement keeps every stripe within the code's tolerance:
/// a whole-rack kill rebuilds everything online, with zero unrecoverable
/// blocks, while degraded reads and the cross-rack split are reported.
#[test]
fn rack_kill_under_rack_aware_placement_recovers_everything() {
    let spec = rack_failure_spec();
    assert_eq!(spec.placement_kind(), PlacementKind::RackAware);
    let result = run_scenario(&spec).expect("scenario runs");

    let rec = result.recovery.as_ref().expect("fault plan ran");
    assert_eq!(rec.phases.len(), 1, "one kill event, one phase");
    let p = &rec.phases[0];
    assert_eq!(p.killed.len(), 4, "rack 1 holds 4 of the 16 OSDs");
    assert!(p.blocks_lost > 0, "the rack hosted blocks");
    assert_eq!(p.blocks_unrecoverable, 0, "rack-aware survives a rack kill");
    assert_eq!(
        p.blocks_rebuilt + p.blocks_skipped,
        p.blocks_lost,
        "every lost block is accounted for"
    );
    assert!(p.recovery_mb_s > 0.0);
    assert!(
        result.degraded_reads > 0,
        "reads during the outage had to reconstruct"
    );
    // Rebuilding across racks necessarily moves cross-rack bytes.
    assert!(rec.rebuild_cross_bytes > 0);
    // Tier conservation surfaces in the result: intra + cross == wire.
    let sum = result.net_intra_gib + result.net_cross_gib;
    assert!(
        (sum - result.net_wire_gib).abs() < 1e-9,
        "tier split must conserve wire bytes: {sum} vs {}",
        result.net_wire_gib
    );
}

/// The same rack kill under rack-oblivious (flat) placement piles more
/// than `m` blocks of some stripes onto the dead rack: recovery must
/// report unrecoverable blocks (data loss) instead of crashing, and the
/// surviving blocks still rebuild.
#[test]
fn rack_kill_under_flat_placement_reports_data_loss() {
    let mut spec = rack_failure_spec();
    spec.name = "rack-failure-flat".into();
    spec.placement = Some(PlacementKind::Flat);
    let result = run_scenario(&spec).expect("scenario runs");

    let rec = result.recovery.as_ref().expect("fault plan ran");
    let p = &rec.phases[0];
    assert!(
        p.blocks_unrecoverable > 0,
        "flat placement must lose data on a rack kill"
    );
    assert!(
        p.blocks_rebuilt > 0,
        "stripes within tolerance still rebuild"
    );
    assert_eq!(
        p.blocks_rebuilt + p.blocks_unrecoverable + p.blocks_skipped,
        p.blocks_lost
    );
    assert!(
        result.failed_reads > 0,
        "reads of lost ranges must surface as failed reads"
    );
}

/// Overlapping kill phases keep exact, disjoint accounting: two node
/// kills in quick succession (the second lands while the first phase is
/// still draining/rebuilding) each report their own block set, and the
/// per-phase identity `rebuilt + skipped + unrecoverable == lost` holds
/// for both.
#[test]
fn overlapping_kill_phases_account_exactly() {
    let mut spec = rack_failure_spec();
    spec.name = "double-node-kill".into();
    // Nodes 0 (rack 0) and 12 (rack 3): two failures stay within m = 2
    // under rack-aware placement.
    spec.faults = Some(
        serde_json::from_str(
            r#"[
                {"kind": "kill_node", "at_ms": 300, "node": 0},
                {"kind": "kill_node", "at_ms": 330, "node": 12}
            ]"#,
        )
        .expect("fault list parses"),
    );
    let result = run_scenario(&spec).expect("scenario runs");
    let rec = result.recovery.as_ref().expect("fault plan ran");
    assert_eq!(rec.phases.len(), 2, "two kills, two phases");
    for p in &rec.phases {
        assert!(p.blocks_lost > 0, "phase {:?} lost blocks", p.killed);
        assert_eq!(
            p.blocks_rebuilt + p.blocks_skipped + p.blocks_unrecoverable,
            p.blocks_lost,
            "phase {:?} accounting identity",
            p.killed
        );
        assert_eq!(p.blocks_unrecoverable, 0, "two failures within m = 2");
    }
}

/// Rebuild targeting preserves the rack-aware spread: after a full rack
/// dies and rebuilds, a *second* rack failure must still be survivable
/// (the rebuilt blocks were spread by least-loaded rack, not piled onto
/// one rack by round-robin).
#[test]
fn sequential_rack_kills_stay_survivable_after_rebuild() {
    let mut spec = rack_failure_spec();
    spec.name = "double-rack-kill".into();
    spec.faults = Some(
        serde_json::from_str(
            r#"[
                {"kind": "kill_rack", "at_ms": 300, "rack": 1},
                {"kind": "kill_rack", "at_ms": 850, "rack": 0}
            ]"#,
        )
        .expect("fault list parses"),
    );
    let result = run_scenario(&spec).expect("scenario runs");
    let rec = result.recovery.as_ref().expect("fault plan ran");
    assert_eq!(rec.phases.len(), 2);
    for p in &rec.phases {
        assert_eq!(
            p.blocks_unrecoverable, 0,
            "phase {:?}: rebuilt blocks must keep every stripe within m per rack",
            p.killed
        );
        assert_eq!(
            p.blocks_rebuilt + p.blocks_skipped,
            p.blocks_lost,
            "phase {:?} accounting identity",
            p.killed
        );
    }
}

/// The §5.4 trend, online: TSUE's real-time recycling leaves (almost)
/// nothing to drain when the rack dies, so its recovery bandwidth is at
/// least PL's, whose lazily-recycled parity logs stall the rebuild
/// behind a recycle storm.
#[test]
fn tsue_online_recovery_bandwidth_at_least_pl() {
    let run = |scheme: &str| {
        let mut spec = rack_failure_spec();
        spec.name = format!("rack-failure-{scheme}");
        spec.scheme = SchemeSpec::named(scheme);
        let result = run_scenario(&spec).expect("scenario runs");
        let rec = result.recovery.expect("fault plan ran");
        let p = &rec.phases[0];
        assert_eq!(p.blocks_unrecoverable, 0, "{scheme}: rack-aware recovers");
        (p.recovery_mb_s, p.drain_ms)
    };
    let (tsue_bw, tsue_drain) = run("tsue");
    let (pl_bw, pl_drain) = run("pl");
    assert!(
        tsue_bw >= pl_bw,
        "TSUE must not recover slower than PL: {tsue_bw:.1} vs {pl_bw:.1} MB/s"
    );
    assert!(
        tsue_drain <= pl_drain,
        "TSUE's drain gate must open no later than PL's: {tsue_drain:.0} vs {pl_drain:.0} ms"
    );
}
