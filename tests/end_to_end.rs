//! Cross-crate integration tests: the full stack from GF arithmetic up to
//! cluster workloads, exercised through the umbrella crate.

use tsue_repro::core::{Tsue, TsueConfig};
use tsue_repro::ec::RsCode;
use tsue_repro::ecfs::{
    check_consistency, run_recovery, run_workload, Cluster, ClusterBuilder, ClusterConfig,
    DeviceKind,
};
use tsue_repro::schemes::SchemeKind;
use tsue_repro::sim::{Sim, SECOND};
use tsue_repro::trace::{ali_cloud, ten_cloud, TraceGen, TraceStats, WorkloadProfile};

fn correctness_cluster(k: usize, m: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::ssd_testbed(k, m, 3);
    cfg.osds = (k + m + 2).max(8);
    cfg.stripe = tsue_repro::ec::StripeConfig::new(k, m, 64 << 10);
    cfg.file_size_per_client = 1 << 20;
    cfg.materialize = true;
    cfg.record_arrivals = true;
    cfg.seed = seed;
    cfg
}

fn fine_profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "integration".into(),
        update_fraction: 0.75,
        size_dist: vec![(512, 0.25), (4096, 0.45), (16384, 0.2), (32768, 0.1)],
        hot_fraction: 0.15,
        hot_access_prob: 0.75,
        skew_depth: 2,
        repeat_prob: 0.25,
        seq_run_prob: 0.1,
        align: 512,
    }
}

/// The whole paper pipeline in one test: trace → cluster → TSUE →
/// drain → verify → fail → recover → verify.
#[test]
fn full_lifecycle_under_tsue() {
    let mut world = ClusterBuilder::from_config(correctness_cluster(4, 2, 7))
        .workload(&fine_profile())
        .ops_per_client(80)
        .scheme_fn(|_| {
            let mut c = TsueConfig::ssd_default();
            c.unit_size = 256 << 10;
            c.seal_interval = SECOND / 2;
            Box::new(Tsue::new(c))
        })
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    world.flush_all(&mut sim);
    let (blocks, stripes) = check_consistency(&world).expect("consistent after drain");
    assert!(blocks > 0 && stripes > 0);

    // Fail a node hosting blocks; recovery must restore byte-identical
    // content (guaranteed by RS reconstruction over verified stripes).
    let report = run_recovery(&mut world, &mut sim, 2);
    assert!(report.blocks_rebuilt > 0, "node 2 hosted blocks");
    assert!(report.bandwidth() > 0.0);
    check_consistency(&world).expect("consistent after recovery");
}

/// Determinism: identical seeds give bit-identical metrics; different
/// seeds differ.
#[test]
fn simulation_is_deterministic() {
    let run = |seed: u64| {
        let mut world = ClusterBuilder::ssd(4, 2, 4)
            .osds(8)
            .file_size_per_client(4 << 20)
            .seed(seed)
            .workload(&ten_cloud())
            .scheme_fn(|_| SchemeKind::Pl.build())
            .build();
        let mut sim: Sim<Cluster> = Sim::new();
        run_workload(&mut world, &mut sim, SECOND);
        (
            world.core.metrics.ops_completed,
            world.core.metrics.total_latency(),
            world.device_stats().total_ops(),
            world.core.net.total_wire(),
        )
    };
    let a = run(99);
    let b = run(99);
    assert_eq!(a, b, "same seed must reproduce exactly");
    let c = run(100);
    assert_ne!(a, c, "different seed must differ");
}

/// Every scheme and TSUE settle to zero backlog and a consistent state on
/// a mixed read/write workload with sub-4K requests (MSR-like).
#[test]
fn all_schemes_and_tsue_converge_msr_style() {
    type SchemeFactory = Box<dyn Fn() -> Box<dyn tsue_repro::ecfs::UpdateScheme>>;
    let schemes: Vec<(String, SchemeFactory)> = vec![
        ("FO".into(), Box::new(|| SchemeKind::Fo.build())),
        ("PL".into(), Box::new(|| SchemeKind::Pl.build())),
        ("CoRD".into(), Box::new(|| SchemeKind::Cord.build())),
        (
            "TSUE".into(),
            Box::new(|| {
                let mut c = TsueConfig::ssd_default();
                c.unit_size = 128 << 10;
                c.seal_interval = SECOND / 2;
                Box::new(Tsue::new(c))
            }),
        ),
    ];
    for (name, make) in schemes {
        let mut world = ClusterBuilder::from_config(correctness_cluster(3, 2, 31))
            .workload(&tsue_repro::trace::msr_volume(
                tsue_repro::trace::MsrVolume::Hm0,
            ))
            .ops_per_client(60)
            .scheme_fn(move |_| make())
            .build();
        let mut sim: Sim<Cluster> = Sim::new();
        run_workload(&mut world, &mut sim, 3600 * SECOND);
        world.flush_all(&mut sim);
        assert_eq!(world.total_scheme_backlog(), 0, "{name} backlog");
        check_consistency(&world).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// HDD cluster with TSUE's HDD profile (3-copy data log, no delta log).
#[test]
fn hdd_tsue_lifecycle() {
    let mut world = ClusterBuilder::from_config(correctness_cluster(4, 2, 44))
        .device(DeviceKind::Hdd)
        .workload(&fine_profile())
        .ops_per_client(40)
        .scheme_fn(|_| {
            let mut c = TsueConfig::hdd_default();
            c.unit_size = 128 << 10;
            c.seal_interval = SECOND / 2;
            Box::new(Tsue::new(c))
        })
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    world.flush_all(&mut sim);
    check_consistency(&world).expect("HDD TSUE consistent");
}

/// The codec reconstructs data a failed cluster node would lose, matching
/// exactly what the recovery engine produces.
#[test]
fn codec_and_cluster_agree_on_reconstruction() {
    let rs = RsCode::new(4, 2).unwrap();
    let data: Vec<Vec<u8>> = (0..4)
        .map(|i| (0..256).map(|j| (i * 37 + j) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let parity = rs.encode(&refs).unwrap();
    // Lose two shards and rebuild.
    let mut shards: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .chain(parity.iter().cloned())
        .map(Some)
        .collect();
    shards[1] = None;
    shards[4] = None;
    rs.reconstruct(&mut shards).unwrap();
    assert_eq!(shards[1].as_ref().unwrap(), &data[1]);
    assert_eq!(shards[4].as_ref().unwrap(), &parity[0]);
}

/// Workload generators stay calibrated when consumed through the umbrella
/// crate (guards against re-export drift).
#[test]
fn trace_calibration_via_umbrella() {
    let vol = 128 << 20;
    let mut g = TraceGen::new(ali_cloud(), vol, 5);
    let stats = TraceStats::compute(&g.take_ops(20_000), vol);
    assert!((stats.write_fraction - 0.75).abs() < 0.03);
    assert!(stats.top_decile_share > 0.3);
}

/// Read path: cache hits must never exceed total reads, and TSUE should
/// serve some reads from its data log on a hot workload.
#[test]
fn tsue_read_cache_serves_hot_reads() {
    let mut world = ClusterBuilder::ssd(4, 2, 4)
        .osds(8)
        .file_size_per_client(4 << 20)
        .workload(&ten_cloud())
        .scheme_fn(|_| Box::new(Tsue::ssd()))
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, SECOND);
    let m = &world.core.metrics;
    assert!(m.reads_completed > 0);
    assert!(m.read_cache_hits <= m.reads_completed);
    assert!(
        m.read_cache_hits > 0,
        "hot Ten-Cloud reads should hit the data log cache"
    );
}

/// Reads keep working after a node failure via degraded (reconstructing)
/// reads, at a visible latency premium.
#[test]
fn degraded_reads_survive_node_failure() {
    // Read-only workload.
    let mut profile = fine_profile();
    profile.update_fraction = 0.0;
    let mut world = ClusterBuilder::ssd(4, 2, 4)
        .osds(8)
        .file_size_per_client(4 << 20)
        .workload(&profile)
        .ops_per_client(50)
        .scheme_fn(|_| SchemeKind::Fo.build())
        .build();
    tsue_repro::ecfs::fail_node(&mut world, 1);
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    let m = &world.core.metrics;
    assert_eq!(
        m.ops_completed, 200,
        "all reads must complete despite the failure"
    );
    assert!(
        m.degraded_reads > 0,
        "some extents lived on the dead node and required reconstruction"
    );
}
