//! Workspace-wiring smoke test: exercises every umbrella re-export layer
//! end to end — GF algebra, the RS codec's incremental-update path, and a
//! full two-stage TSUE update cycle on a simulated cluster — so a broken
//! crate graph or re-export fails fast and obviously.

use tsue_repro::core::{Tsue, TsueConfig};
use tsue_repro::ec::{data_delta, RsCode, StripeConfig};
use tsue_repro::ecfs::{check_consistency, run_workload, Cluster, ClusterBuilder, ClusterConfig};
use tsue_repro::gf;
use tsue_repro::sim::{Sim, SECOND};
use tsue_repro::trace::WorkloadProfile;

/// The bottom layer answers: GF(2^8) really is a field through the
/// umbrella path.
#[test]
fn gf_reexport_is_a_field() {
    for a in 1u8..=255 {
        assert_eq!(gf::mul(a, gf::inv(a)), 1, "a * a^-1 must be 1 (a={a})");
        assert_eq!(gf::add(a, a), 0, "char-2 field: a + a must be 0");
    }
}

/// Encode a stripe, overwrite a range through the incremental
/// parity-delta equations (the algebra both TSUE stages rely on), and
/// verify parity stays identical to a full re-encode.
#[test]
fn incremental_stripe_update_matches_reencode() {
    let (k, m, len) = (4usize, 2usize, 512usize);
    let rs = RsCode::new(k, m).expect("valid RS shape");
    let mut data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..len).map(|j| (i * 37 + j * 11) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let mut parity = rs.encode(&refs).expect("encode");

    // Overwrite 100 bytes in block 2 at offset 300, updating parity
    // incrementally instead of re-encoding.
    let (block, off, ulen) = (2usize, 300usize, 100usize);
    let new: Vec<u8> = (0..ulen).map(|j| (j * 7 + 1) as u8).collect();
    let delta = data_delta(&data[block][off..off + ulen], &new);
    data[block][off..off + ulen].copy_from_slice(&new);
    for (j, p) in parity.iter_mut().enumerate() {
        let pd = rs.parity_delta(j, block, &delta);
        RsCode::apply_parity_delta(&mut p[off..off + ulen], &pd);
    }

    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    assert_eq!(parity, rs.encode(&refs).expect("re-encode"));

    // And the stripe geometry tiles the update exactly.
    let cfg = StripeConfig::new(k, m, len as u64);
    let extents = cfg.split_range((block * len + off) as u64, ulen as u64);
    assert_eq!(extents.iter().map(|e| e.len).sum::<u64>(), ulen as u64);
}

/// The headline path: a TSUE cluster absorbs an update workload, both
/// stages drain (DataLog recycle + ParityLog recycle), and every stripe
/// is byte-for-byte parity-consistent afterwards.
#[test]
fn two_stage_tsue_update_leaves_cluster_consistent() {
    let (k, m) = (3usize, 2usize);
    let mut cfg = ClusterConfig::ssd_testbed(k, m, 2);
    cfg.osds = (k + m + 1).max(7);
    cfg.stripe = StripeConfig::new(k, m, 32 << 10);
    cfg.file_size_per_client = 1 << 20;
    cfg.materialize = true;
    cfg.record_arrivals = true;
    cfg.seed = 0xEC;

    let mut world = ClusterBuilder::from_config(cfg)
        .scheme_fn(|_| {
            let mut c = TsueConfig::ssd_default();
            c.unit_size = 128 << 10;
            c.seal_interval = SECOND / 2;
            Box::new(Tsue::new(c))
        })
        .build();
    world.set_workload(&WorkloadProfile {
        name: "smoke".into(),
        update_fraction: 0.8,
        size_dist: vec![(4096, 0.6), (16384, 0.4)],
        hot_fraction: 0.2,
        hot_access_prob: 0.8,
        skew_depth: 2,
        repeat_prob: 0.3,
        seq_run_prob: 0.1,
        align: 512,
    });
    for c in &mut world.core.clients {
        c.max_ops = Some(60);
    }

    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    assert!(
        world.core.metrics.ops_completed > 0,
        "workload must complete ops"
    );

    world.flush_all(&mut sim);
    assert_eq!(
        world.total_scheme_backlog(),
        0,
        "both TSUE stages must drain on flush"
    );
    let (blocks, stripes) = check_consistency(&world).expect("cluster consistent after drain");
    assert!(
        blocks > 0 && stripes > 0,
        "consistency check must cover data"
    );
}
