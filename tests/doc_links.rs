//! Doc-link checker: every relative link and bare file reference in the
//! top-level docs must resolve to a real path in the repo, so the docs
//! cannot silently rot as files move.

use std::path::Path;

const DOCS: &[&str] = &["README.md", "ARCHITECTURE.md", "ROADMAP.md"];

/// Extracts `](target)` markdown link targets from one line.
fn link_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(i) = rest.find("](") {
        rest = &rest[i + 2..];
        if let Some(j) = rest.find(')') {
            out.push(rest[..j].to_string());
            rest = &rest[j..];
        } else {
            break;
        }
    }
    out
}

/// Extracts backtick-quoted repo paths (`crates/...`, `tests/...`,
/// `scenarios/...`, `vendor/...`, `src/...`, or a top-level `*.md` /
/// `*.json`) so prose references stay live too.
fn inline_path_refs(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for piece in line.split('`').skip(1).step_by(2) {
        let p = piece.trim();
        let top_level_doc = !p.contains('/')
            && (p.ends_with(".md") || p.ends_with(".json") || p.ends_with(".toml"));
        let known_dir = [
            "crates/",
            "tests/",
            "scenarios/",
            "vendor/",
            "src/",
            "examples/",
        ]
        .iter()
        .any(|d| p.starts_with(d));
        // Only claim pieces that look like a concrete file path (an
        // extension, no spaces/globs/placeholders).
        let concrete = !p.contains(' ')
            && !p.contains('*')
            && !p.contains('<')
            && Path::new(p).extension().is_some();
        if concrete && (top_level_doc || known_dir) {
            out.push(p.to_string());
        }
    }
    out
}

#[test]
fn relative_doc_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken: Vec<String> = Vec::new();
    for doc in DOCS {
        let text = std::fs::read_to_string(root.join(doc))
            .unwrap_or_else(|e| panic!("{doc} must exist and be readable: {e}"));
        for (n, line) in text.lines().enumerate() {
            let mut targets = link_targets(line);
            targets.extend(inline_path_refs(line));
            for t in targets {
                // External links and intra-doc anchors are out of scope.
                if t.starts_with("http://") || t.starts_with("https://") || t.starts_with('#') {
                    continue;
                }
                // Badge-style repo-relative CI links (`../../actions/...`)
                // point outside the checkout by design.
                if t.starts_with("../") {
                    continue;
                }
                // A placeholder like `BENCH_NN.json` documents a pattern,
                // not a file.
                if t.contains("NN") {
                    continue;
                }
                let path = t.split('#').next().unwrap_or(&t);
                if !root.join(path).exists() {
                    broken.push(format!("{doc}:{}: `{t}` does not resolve", n + 1));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken doc links/paths:\n{}",
        broken.join("\n")
    );
}

#[test]
fn architecture_doc_is_linked_from_readme() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    assert!(
        readme.contains("](ARCHITECTURE.md)"),
        "README must link to ARCHITECTURE.md"
    );
}
