//! Cross-crate property tests: randomized workloads against the strongest
//! system invariants.

use proptest::prelude::*;
use tsue_repro::core::{Tsue, TsueConfig};
use tsue_repro::ecfs::{check_consistency, run_workload, Cluster, ClusterBuilder, ClusterConfig};
use tsue_repro::schemes::SchemeKind;
use tsue_repro::sim::{Sim, SECOND};
use tsue_repro::trace::WorkloadProfile;

fn profile_from(update_frac: f64, hot: f64, repeat: f64, seq: f64) -> WorkloadProfile {
    WorkloadProfile {
        name: "prop".into(),
        update_fraction: update_frac,
        size_dist: vec![(512, 0.3), (4096, 0.4), (8192, 0.2), (24576, 0.1)],
        hot_fraction: hot,
        hot_access_prob: 0.8,
        skew_depth: 2,
        repeat_prob: repeat,
        seq_run_prob: seq,
        align: 512,
    }
}

fn converge_check(
    scheme: &str,
    make: impl Fn() -> Box<dyn tsue_repro::ecfs::UpdateScheme> + 'static,
    k: usize,
    m: usize,
    seed: u64,
    profile: &WorkloadProfile,
    ops: u64,
) -> Result<(), TestCaseError> {
    let mut cfg = ClusterConfig::ssd_testbed(k, m, 2);
    cfg.osds = (k + m + 1).max(7);
    cfg.stripe = tsue_repro::ec::StripeConfig::new(k, m, 32 << 10);
    cfg.file_size_per_client = 1 << 20;
    cfg.materialize = true;
    cfg.record_arrivals = true;
    cfg.seed = seed;
    let mut world = ClusterBuilder::from_config(cfg)
        .workload(profile)
        .ops_per_client(ops)
        .scheme_fn(move |_| make())
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    world.flush_all(&mut sim);
    prop_assert_eq!(world.total_scheme_backlog(), 0, "{} backlog", scheme);
    if let Err(e) = check_consistency(&world) {
        return Err(TestCaseError::fail(format!("{scheme}: {e}")));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any workload shape, any seed: every baseline converges to a
    /// consistent state. (The paper's comparison is only meaningful
    /// because schemes are state-equivalent.)
    #[test]
    fn baselines_converge_under_random_workloads(
        seed: u64,
        update_frac in 0.4f64..0.95,
        hot in 0.05f64..0.4,
        repeat in 0.0f64..0.5,
        seq in 0.0f64..0.3,
        scheme_idx in 0usize..6,
    ) {
        let schemes = [
            SchemeKind::Fo,
            SchemeKind::Fl,
            SchemeKind::Pl,
            SchemeKind::Plr,
            SchemeKind::Parix,
            SchemeKind::Cord,
        ];
        let kind = schemes[scheme_idx];
        let profile = profile_from(update_frac, hot, repeat, seq);
        converge_check(kind.name(), move || kind.build(), 3, 2, seed, &profile, 40)?;
    }

    /// TSUE under random workload shapes and random ablation levels.
    #[test]
    fn tsue_converges_under_random_workloads(
        seed: u64,
        update_frac in 0.4f64..0.95,
        hot in 0.05f64..0.4,
        repeat in 0.0f64..0.5,
        level in 0usize..6,
    ) {
        let profile = profile_from(update_frac, hot, repeat, 0.1);
        converge_check(
            "TSUE",
            move || {
                let mut c = TsueConfig::breakdown(level);
                c.unit_size = 128 << 10;
                c.seal_interval = SECOND / 2;
                Box::new(Tsue::new(c))
            },
            3,
            2,
            seed,
            &profile,
            40,
        )?;
    }

    /// Every single-bit flip, at any offset in any page, is caught by the
    /// per-page checksum table — the detection floor the whole scrub
    /// subsystem stands on.
    #[test]
    fn checksum_detects_every_single_bit_flip(
        seed: u64,
        len in 1u64..3 * tsue_repro::integrity::PAGE,
        flip_pos: u64,
    ) {
        use tsue_repro::integrity::{BlockChecksums, SplitRng, PAGE};
        let mut rng = SplitRng::new(seed);
        let mut data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut sums = BlockChecksums::new_zeroed(len);
        sums.update_all(&data);
        prop_assert!(sums.verify_range(&data, 0, len).is_ok());

        let bit = flip_pos % (len * 8);
        data[(bit / 8) as usize] ^= 1 << (bit % 8);
        prop_assert!(
            sums.verify_range(&data, 0, len).is_err(),
            "bit {bit} of {len} bytes flipped silently"
        );
        let page = (bit / 8 / PAGE) as usize;
        prop_assert_eq!(sums.corrupt_pages(&data), vec![page]);
    }

    /// Scrub repair restores rotted blocks byte-exactly (against the
    /// arrival-replay oracle), and a second sweep over the repaired
    /// cluster is a no-op — repair is idempotent.
    #[test]
    fn scrub_repair_is_byte_exact_and_idempotent(
        seed: u64,
        hits in 1usize..6,
    ) {
        use tsue_repro::ecfs::run_full_scrub;
        use tsue_repro::integrity::SplitRng;

        let profile = profile_from(0.8, 0.2, 0.3, 0.1);
        let mut cfg = ClusterConfig::ssd_testbed(3, 2, 2);
        cfg.osds = 7;
        cfg.stripe = tsue_repro::ec::StripeConfig::new(3, 2, 32 << 10);
        cfg.file_size_per_client = 1 << 20;
        cfg.materialize = true;
        cfg.record_arrivals = true;
        cfg.seed = seed;
        let mut world = ClusterBuilder::from_config(cfg)
            .workload(&profile)
            .ops_per_client(30)
            .scheme_fn(|_| {
                let mut c = TsueConfig::ssd_default();
                c.unit_size = 128 << 10;
                c.seal_interval = SECOND / 2;
                Box::new(Tsue::new(c))
            })
            .build();
        let mut sim: Sim<Cluster> = Sim::new();
        run_workload(&mut world, &mut sim, 3600 * SECOND);
        world.flush_all(&mut sim);

        // Rot a few random bytes across random blocks (bypassing the
        // write path, exactly like media corruption would).
        let mut rng = SplitRng::new(seed ^ 0x5eed);
        for _ in 0..hits {
            let osd = rng.below(world.core.cfg.osds as u64) as usize;
            let ids = world.core.osds[osd].block_ids();
            if ids.is_empty() {
                continue;
            }
            let block = ids[rng.below(ids.len() as u64) as usize];
            let bs = world.core.cfg.stripe.block_size;
            let pos = rng.below(bs) as usize;
            if let Some(bytes) = world.core.osds[osd].block_data_mut(block) {
                bytes[pos] ^= 0xa5;
            }
        }

        let first = run_full_scrub(&mut world, &mut sim);
        prop_assert_eq!(first.unrecoverable, 0, "clean codeword rot must repair");
        if let Err(e) = check_consistency(&world) {
            return Err(TestCaseError::fail(format!("post-repair: {e}")));
        }
        let second = run_full_scrub(&mut world, &mut sim);
        prop_assert_eq!(second.repaired, 0, "second sweep must be a no-op");
        prop_assert_eq!(second.unrecoverable, 0);
        if let Err(e) = check_consistency(&world) {
            return Err(TestCaseError::fail(format!("post-idempotence: {e}")));
        }
    }

    /// A power loss tearing the in-flight log append at *any* offset
    /// (the seed drives the cut) never leaves a verified-but-wrong byte:
    /// after restart, replay, and drain, every block matches the
    /// arrival-replay oracle and parity re-encodes consistently.
    #[test]
    fn torn_append_never_yields_verified_but_wrong_reads(
        seed: u64,
        node_pick: u64,
        cut_seed: u64,
    ) {
        use tsue_repro::ecfs::repair_all_dirty_parity;

        let profile = profile_from(0.8, 0.2, 0.3, 0.1);
        let mut cfg = ClusterConfig::ssd_testbed(3, 2, 2);
        cfg.osds = 7;
        cfg.stripe = tsue_repro::ec::StripeConfig::new(3, 2, 32 << 10);
        cfg.file_size_per_client = 1 << 20;
        cfg.materialize = true;
        cfg.record_arrivals = true;
        cfg.seed = seed;
        let mut world = ClusterBuilder::from_config(cfg)
            .workload(&profile)
            .ops_per_client(30)
            .scheme_fn(|_| {
                let mut c = TsueConfig::ssd_default();
                c.unit_size = 128 << 10;
                c.seal_interval = SECOND / 2;
                Box::new(Tsue::new(c))
            })
            .build();
        let mut sim: Sim<Cluster> = Sim::new();
        // Half the workload, then yank power on a random OSD mid-flight.
        run_workload(&mut world, &mut sim, SECOND / 2);
        let node = (node_pick % world.core.cfg.osds as u64) as usize;
        world.power_loss(&mut sim, node, cut_seed);
        run_workload(&mut world, &mut sim, 3600 * SECOND);
        world.flush_all(&mut sim);
        repair_all_dirty_parity(&mut world, &mut sim);
        prop_assert_eq!(world.total_scheme_backlog(), 0);
        if let Err(e) = check_consistency(&world) {
            return Err(TestCaseError::fail(format!("post-power-loss: {e}")));
        }
    }

    /// Random RS shapes: TSUE converges for any (k, m) the cluster fits.
    #[test]
    fn tsue_converges_across_code_shapes(
        seed: u64,
        k in 2usize..7,
        m in 2usize..5,
    ) {
        let profile = profile_from(0.8, 0.2, 0.3, 0.1);
        converge_check(
            "TSUE",
            || {
                let mut c = TsueConfig::ssd_default();
                c.unit_size = 128 << 10;
                c.seal_interval = SECOND / 2;
                Box::new(Tsue::new(c))
            },
            k,
            m,
            seed,
            &profile,
            30,
        )?;
    }
}
