//! Cross-crate property tests: randomized workloads against the strongest
//! system invariants.

use proptest::prelude::*;
use tsue_repro::core::{Tsue, TsueConfig};
use tsue_repro::ecfs::{check_consistency, run_workload, Cluster, ClusterBuilder, ClusterConfig};
use tsue_repro::schemes::SchemeKind;
use tsue_repro::sim::{Sim, SECOND};
use tsue_repro::trace::WorkloadProfile;

fn profile_from(update_frac: f64, hot: f64, repeat: f64, seq: f64) -> WorkloadProfile {
    WorkloadProfile {
        name: "prop".into(),
        update_fraction: update_frac,
        size_dist: vec![(512, 0.3), (4096, 0.4), (8192, 0.2), (24576, 0.1)],
        hot_fraction: hot,
        hot_access_prob: 0.8,
        skew_depth: 2,
        repeat_prob: repeat,
        seq_run_prob: seq,
        align: 512,
    }
}

fn converge_check(
    scheme: &str,
    make: impl Fn() -> Box<dyn tsue_repro::ecfs::UpdateScheme> + 'static,
    k: usize,
    m: usize,
    seed: u64,
    profile: &WorkloadProfile,
    ops: u64,
) -> Result<(), TestCaseError> {
    let mut cfg = ClusterConfig::ssd_testbed(k, m, 2);
    cfg.osds = (k + m + 1).max(7);
    cfg.stripe = tsue_repro::ec::StripeConfig::new(k, m, 32 << 10);
    cfg.file_size_per_client = 1 << 20;
    cfg.materialize = true;
    cfg.record_arrivals = true;
    cfg.seed = seed;
    let mut world = ClusterBuilder::from_config(cfg)
        .workload(profile)
        .ops_per_client(ops)
        .scheme_fn(move |_| make())
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    world.flush_all(&mut sim);
    prop_assert_eq!(world.total_scheme_backlog(), 0, "{} backlog", scheme);
    if let Err(e) = check_consistency(&world) {
        return Err(TestCaseError::fail(format!("{scheme}: {e}")));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any workload shape, any seed: every baseline converges to a
    /// consistent state. (The paper's comparison is only meaningful
    /// because schemes are state-equivalent.)
    #[test]
    fn baselines_converge_under_random_workloads(
        seed: u64,
        update_frac in 0.4f64..0.95,
        hot in 0.05f64..0.4,
        repeat in 0.0f64..0.5,
        seq in 0.0f64..0.3,
        scheme_idx in 0usize..6,
    ) {
        let schemes = [
            SchemeKind::Fo,
            SchemeKind::Fl,
            SchemeKind::Pl,
            SchemeKind::Plr,
            SchemeKind::Parix,
            SchemeKind::Cord,
        ];
        let kind = schemes[scheme_idx];
        let profile = profile_from(update_frac, hot, repeat, seq);
        converge_check(kind.name(), move || kind.build(), 3, 2, seed, &profile, 40)?;
    }

    /// TSUE under random workload shapes and random ablation levels.
    #[test]
    fn tsue_converges_under_random_workloads(
        seed: u64,
        update_frac in 0.4f64..0.95,
        hot in 0.05f64..0.4,
        repeat in 0.0f64..0.5,
        level in 0usize..6,
    ) {
        let profile = profile_from(update_frac, hot, repeat, 0.1);
        converge_check(
            "TSUE",
            move || {
                let mut c = TsueConfig::breakdown(level);
                c.unit_size = 128 << 10;
                c.seal_interval = SECOND / 2;
                Box::new(Tsue::new(c))
            },
            3,
            2,
            seed,
            &profile,
            40,
        )?;
    }

    /// Random RS shapes: TSUE converges for any (k, m) the cluster fits.
    #[test]
    fn tsue_converges_across_code_shapes(
        seed: u64,
        k in 2usize..7,
        m in 2usize..5,
    ) {
        let profile = profile_from(0.8, 0.2, 0.3, 0.1);
        converge_check(
            "TSUE",
            || {
                let mut c = TsueConfig::ssd_default();
                c.unit_size = 128 << 10;
                c.seal_interval = SECOND / 2;
                Box::new(Tsue::new(c))
            },
            k,
            m,
            seed,
            &profile,
            30,
        )?;
    }
}
