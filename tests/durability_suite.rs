//! Durability across failure windows, end to end: the degraded-write
//! journal, rebuild-time replay, heal-time re-sync, and rehome
//! reclamation. The tentpole claim under test: **no acked write is ever
//! lost**, even when its home dies, gets rebuilt elsewhere, and later
//! rejoins — and after a full re-sync the rehome table returns to empty.

use proptest::prelude::*;
use tsue_repro::bench::{bundled_scenarios, run_scenario, ScenarioSpec};
use tsue_repro::ecfs::{
    check_consistency, fail_node, heal_node, run_workload, start_resync, BlockId, Chunk, Cluster,
    ClusterBuilder, DegradedJournal, JournalEntry,
};
use tsue_repro::fault::{install, run_plan_to_completion, EngineConfig, FaultEvent, FaultPlan};
use tsue_repro::schemes::SchemeKind;
use tsue_repro::sim::{Sim, SECOND};
use tsue_repro::trace::WorkloadProfile;

/// A write-heavy, small-extent profile that keeps every OSD busy so the
/// failure window is guaranteed to catch in-flight and future writes.
fn write_heavy() -> WorkloadProfile {
    WorkloadProfile {
        name: "durability".into(),
        update_fraction: 0.9,
        size_dist: vec![(512, 0.2), (4096, 0.5), (16384, 0.3)],
        hot_fraction: 0.2,
        hot_access_prob: 0.6,
        skew_depth: 2,
        repeat_prob: 0.2,
        seq_run_prob: 0.1,
        align: 512,
    }
}

/// A materialized correctness cluster under the write-through FO scheme
/// (journal durability is scheme-independent; a write-through scheme
/// keeps the kill-time store/parity cut well defined — log-buffered
/// schemes additionally need data-log replica replay, a roadmap item).
fn durability_cluster(seed: u64, file_size: u64, ops: u64) -> Cluster {
    ClusterBuilder::ssd(4, 2, 3)
        .osds(10)
        .stripe(tsue_repro::ec::StripeConfig::new(4, 2, 64 << 10))
        .file_size_per_client(file_size)
        .materialize(true)
        .record_arrivals(true)
        .seed(seed)
        .workload(&write_heavy())
        .ops_per_client(ops)
        .scheme_fn(|_| SchemeKind::Fo.build())
        .build()
}

/// The tentpole, end to end: kill a node mid-traffic, keep writing
/// (degraded writes journal), rebuild online (journal replays into the
/// rebuilt blocks), heal the node (re-sync copies rebuilt blocks back
/// and reclaims the rehome table) — and every acked write reads back
/// byte-exact, with parity consistent, zero lost bytes.
#[test]
fn acked_writes_survive_kill_rebuild_heal_byte_exact() {
    // Enough stripes that the victim hosts dozens of blocks, and a
    // serial rebuild, so the failure window is long enough to catch a
    // steady stream of writes to the dead node's blocks.
    let mut world = durability_cluster(11, 8 << 20, 150);
    let mut sim: Sim<Cluster> = Sim::new();
    let plan = FaultPlan::new(vec![
        FaultEvent::KillNode { at_ms: 5, node: 2 },
        FaultEvent::HealNode {
            at_ms: 400,
            node: 2,
        },
    ]);
    let cfg = EngineConfig {
        rebuild_concurrency: 1,
        ..EngineConfig::default()
    };
    let tracker = install(&world, &mut sim, &plan, cfg).expect("valid plan");
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    run_plan_to_completion(&mut world, &mut sim, &tracker);
    world.flush_all(&mut sim);

    // Zero lost acked bytes: everything journaled was replayed.
    let journal = &world.core.journal;
    assert!(
        journal.entries_appended > 0,
        "the kill window must catch writes to the dead node's blocks"
    );
    assert_eq!(
        journal.bytes_appended, journal.bytes_replayed,
        "journaled bytes must equal replayed bytes (nothing parked is lost)"
    );
    assert_eq!(journal.pending_entries(), 0, "no entry left unreplayed");

    // One parked extent counts exactly once, whichever side detected the
    // dead home (regression for the double-count across
    // client.rs/scheme.rs): every degraded write is a journaled write.
    assert_eq!(
        world.core.metrics.degraded_writes, journal.entries_appended,
        "degraded_writes must equal journaled extents for this window"
    );

    // Rehome reclamation: the heal re-synced the node and the override
    // table shrank back to empty.
    assert_eq!(world.core.mds.rehomed_count(), 0, "rehome table reclaimed");
    assert!(
        world.core.resync.blocks_reclaimed > 0,
        "heal reclaimed rebuilds"
    );
    assert_eq!(
        world.core.mds.dirty_parity_count(),
        0,
        "no parity left dirty"
    );

    // Byte-exact reads of every acked write, and parity that matches the
    // data — across the whole failure window.
    let (blocks, stripes) = check_consistency(&world).expect("byte-exact end state");
    assert!(blocks > 0 && stripes > 0);

    // The fault report tells the same story.
    let report = tracker.borrow().report.clone();
    assert_eq!(report.phases.len(), 1);
    assert_eq!(report.resyncs.len(), 1);
    let resync = &report.resyncs[0];
    assert_eq!(resync.node, 2);
    assert_eq!(resync.rehomed_residual, 0);
    assert!(resync.blocks_copied_back > 0);
    assert_eq!(
        report.phases[0].journal_replayed_bytes + resync.replayed_bytes,
        journal.bytes_replayed,
        "every replayed byte is attributed to a rebuild phase or a heal"
    );
}

/// Heal-before-rebuild: the home comes back while its blocks were never
/// reconstructed. The journal replays *in place* at the heal instant and
/// the re-sync re-encodes parity that missed NACKed deltas — no recovery
/// engine involved at all.
#[test]
fn heal_before_rebuild_replays_journal_in_place() {
    let mut world = durability_cluster(23, 2 << 20, 120);
    let mut sim: Sim<Cluster> = Sim::new();
    // Kill mid-run without starting any rebuild.
    sim.schedule_at(
        5 * SECOND / 1000,
        |w: &mut Cluster, _sim: &mut Sim<Cluster>| {
            fail_node(w, 2);
        },
    );
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    assert!(
        world.core.journal.pending_entries() > 0,
        "degraded writes must have parked in the journal"
    );

    let heal = heal_node(&mut world, &mut sim, 2);
    assert!(heal.blocks_replayed > 0, "stale blocks caught up in place");
    assert_eq!(
        world.core.journal.pending_entries(),
        0,
        "heal consumed the journal"
    );
    let stats = start_resync(&mut world, &mut sim, 2);
    assert_eq!(stats.blocks_copied_back, 0, "nothing was ever rehomed");
    assert!(stats.parity_repaired > 0, "NACKed deltas left parity dirty");
    sim.run_while(&mut world, |w| w.core.resync.pending() > 0);
    world.flush_all(&mut sim);

    assert_eq!(world.core.mds.rehomed_count(), 0);
    assert_eq!(
        world.core.journal.bytes_appended,
        world.core.journal.bytes_replayed
    );
    check_consistency(&world).expect("healed-in-place end state is byte-exact");
}

/// With journaling off, the old drop-the-payload failover semantics are
/// preserved (and clearly reported): degraded writes are counted but
/// nothing is journaled.
#[test]
fn journaling_off_restores_drop_semantics() {
    let mut world = ClusterBuilder::ssd(4, 2, 3)
        .osds(10)
        .file_size_per_client(2 << 20)
        .journal(false)
        .seed(7)
        .workload(&write_heavy())
        .ops_per_client(80)
        .scheme_fn(|_| SchemeKind::Fo.build())
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    let plan = FaultPlan::new(vec![FaultEvent::KillNode { at_ms: 5, node: 2 }]);
    let tracker = install(&world, &mut sim, &plan, EngineConfig::default()).expect("valid plan");
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    run_plan_to_completion(&mut world, &mut sim, &tracker);
    assert!(world.core.metrics.degraded_writes > 0);
    assert_eq!(world.core.journal.entries_appended, 0, "journaling was off");
}

/// A flapping node must not be re-synced while dead: re-sync on a
/// re-killed node would reclaim rehome entries back onto the corpse,
/// pointing every future read at a dead OSD.
#[test]
fn resync_refuses_a_rekilled_node() {
    let mut world = durability_cluster(31, 2 << 20, 0);
    let mut sim: Sim<Cluster> = Sim::new();
    // A block of node 2 was rebuilt onto node 5 during an outage…
    let gstripe = {
        let core = &mut world.core;
        let bps = core.cfg.stripe.blocks_per_stripe();
        (0..)
            .find(|&gs| core.placement.node_for(gs, 0, bps) == 2)
            .unwrap()
    };
    world.core.mds.rehome(gstripe, 0, 5);
    // …and the node flapped: healed, then died again before the re-sync.
    fail_node(&mut world, 2);
    let stats = start_resync(&mut world, &mut sim, 2);
    assert_eq!(stats.blocks_reclaimed, 0, "no reclamation onto a corpse");
    assert_eq!(
        world.core.mds.rehomed(gstripe, 0),
        Some(5),
        "the rehome override must keep pointing at the live copy"
    );
}

/// The bundled heal-rejoin scenario through the declarative API: the
/// emitted result must show zero lost acked bytes (journaled ==
/// replayed), a reclaimed rehome table, and a re-sync report entry.
#[test]
fn heal_rejoin_scenario_reports_zero_lost_bytes() {
    let (_, json) = bundled_scenarios()
        .iter()
        .find(|(p, _)| p.ends_with("heal_rejoin.json"))
        .expect("heal-rejoin scenario is bundled");
    let spec: ScenarioSpec = serde_json::from_str(json).expect("scenario parses");
    assert!(spec.materialize(), "the bundled scenario runs materialized");
    let result = run_scenario(&spec).expect("scenario runs");

    assert!(result.journaled_writes > 0, "the window parked writes");
    assert_eq!(result.degraded_writes, result.journaled_writes);
    assert_eq!(result.journaled_bytes, result.replayed_bytes);
    assert_eq!(result.rehomed_residual, 0);
    assert!(result.reclaimed_blocks > 0);
    assert!(result.resync_bytes > 0);
    let rec = result.recovery.as_ref().expect("fault plan ran");
    assert_eq!(rec.resyncs.len(), 1);
    assert_eq!(rec.resyncs[0].rehomed_residual, 0);
}

/// A materialized, checksummed TSUE cluster for the composed
/// integrity-fault tests: a 3× replicated data log so acked appends
/// survive the home dying before recycle.
fn integrity_cluster(seed: u64, checksums: bool) -> Cluster {
    ClusterBuilder::ssd(4, 2, 3)
        .osds(10)
        .stripe(tsue_repro::ec::StripeConfig::new(4, 2, 64 << 10))
        .file_size_per_client(4 << 20)
        .materialize(true)
        .checksums(checksums)
        .record_arrivals(true)
        .seed(seed)
        .workload(&write_heavy())
        .ops_per_client(150)
        .scheme_fn(|_| {
            let mut c = tsue_repro::core::TsueConfig::ssd_default();
            c.data_replicas = 3;
            Box::new(tsue_repro::core::Tsue::new(c))
        })
        .build()
}

/// The composed integrity plan: silent bit rot, then a torn-tail power
/// loss, then a node kill — three different ways to lose bytes, stacked.
fn integrity_plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent::CorruptBlock {
            at_ms: 3,
            node: 4,
            blocks: Some(6),
            seed: Some(7),
        },
        FaultEvent::PowerLoss {
            at_ms: 8,
            node: 1,
            seed: Some(11),
        },
        FaultEvent::KillNode { at_ms: 15, node: 2 },
    ])
}

/// The integrity tentpole, end to end: bit rot + power loss + node kill
/// composed on a checksummed, log-replicated TSUE cluster — and every
/// acked write still reads back byte-exact after the scrub repairs the
/// rot, the torn tail replays from a replica, and the rebuild replays
/// the dead home's data log.
#[test]
fn acked_writes_survive_bitrot_powerloss_kill_byte_exact() {
    let mut world = integrity_cluster(17, true);
    let mut sim: Sim<Cluster> = Sim::new();
    let tracker =
        install(&world, &mut sim, &integrity_plan(), EngineConfig::default()).expect("valid plan");
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    run_plan_to_completion(&mut world, &mut sim, &tracker);
    world.flush_all(&mut sim);
    let report = tsue_repro::ecfs::run_full_scrub(&mut world, &mut sim);

    assert!(
        world.core.metrics.corruptions_detected > 0,
        "the injected rot must be detected"
    );
    assert_eq!(
        report.unrecoverable, 0,
        "every rotted page must repair from survivors"
    );
    assert!(
        world.core.metrics.torn_detected > 0,
        "the power loss must tear an in-flight append"
    );
    assert_eq!(
        world.core.metrics.failed_reads, 0,
        "no read may fail outright"
    );
    assert_eq!(world.core.mds.dirty_parity_count(), 0);
    let (blocks, stripes) = check_consistency(&world).expect("byte-exact end state");
    assert!(blocks > 0 && stripes > 0);
}

/// Pinned negative: the *same* composed faults with checksums disabled
/// demonstrably corrupt the end state — rot is never detected, the
/// rebuild decodes through the rotted survivor, and reads return wrong
/// bytes. This is the control proving the positive test above is doing
/// real work, not passing vacuously.
#[test]
fn checksums_off_returns_corrupt_bytes() {
    let mut world = integrity_cluster(17, false);
    let mut sim: Sim<Cluster> = Sim::new();
    let tracker =
        install(&world, &mut sim, &integrity_plan(), EngineConfig::default()).expect("valid plan");
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    run_plan_to_completion(&mut world, &mut sim, &tracker);
    world.flush_all(&mut sim);

    assert_eq!(
        world.core.metrics.corruptions_detected, 0,
        "without checksums nothing can detect the rot"
    );
    let err = tsue_repro::ecfs::check_data_blocks(&world)
        .expect_err("with checksums off the rot must surface as wrong bytes");
    assert!(
        err.contains("content mismatch"),
        "the failure must be wrong data bytes, not a missing block: {err}"
    );
}

/// The bundled scrub-bitrot scenario through the declarative API: the
/// emitted result must show the rot detected and repaired (none
/// unrecoverable), the torn append replayed, replica-replay traffic, and
/// zero failed reads.
#[test]
fn scrub_bitrot_scenario_reports_full_repair() {
    let (_, json) = bundled_scenarios()
        .iter()
        .find(|(p, _)| p.ends_with("scrub_bitrot.json"))
        .expect("scrub-bitrot scenario is bundled");
    let spec: ScenarioSpec = serde_json::from_str(json).expect("scenario parses");
    assert!(spec.materialize() && spec.checksums() && spec.scrub_mb_s() > 0);
    let result = run_scenario(&spec).expect("scenario runs");

    assert!(result.blocks_scrubbed > 0, "the sweep ran");
    assert!(result.corruptions_detected > 0, "rot detected");
    assert!(result.corruptions_repaired > 0, "rot repaired");
    assert_eq!(result.corruptions_unrecoverable, 0, "nothing written off");
    assert!(result.torn_detected > 0, "the power loss tore a tail");
    assert!(result.torn_replayed > 0, "torn tail replayed from a copy");
    assert!(
        result.replica_replayed_bytes > 0,
        "the dead home's data log replayed"
    );
    assert_eq!(result.failed_reads, 0, "no read failed outright");
}

/// Strategy: a list of distinct journal entries (op ids unique by index)
/// with deterministic payloads.
fn entries_strategy() -> impl Strategy<Value = Vec<(u64, u64, u8)>> {
    // (offset page, length words, payload byte) per entry; offsets and
    // lengths are scaled below to stay inside a 4 KiB block.
    proptest::collection::vec((0u64..56, 1u64..8, any::<u8>()), 1..20)
}

proptest! {
    /// Journal replay is idempotent under duplicate delivery: appending
    /// every entry twice (client retransmit racing its failover timer)
    /// journals each parked extent once, and replaying the journal over
    /// an already-replayed buffer changes nothing.
    #[test]
    fn journal_replay_idempotent_under_duplicate_delivery(raw in entries_strategy()) {
        let block = BlockId { file: 0, stripe: 0, role: 0 };
        let make = |i: usize, off: u64, len: u64, byte: u8| JournalEntry {
            op_id: i as u64,
            ext: 0,
            off: off * 64,
            data: Chunk::real(vec![byte; (len * 64) as usize]),
        };

        let mut once = DegradedJournal::default();
        let mut dup = DegradedJournal::default();
        for (i, &(off, len, byte)) in raw.iter().enumerate() {
            prop_assert!(once.append(block, make(i, off, len, byte)));
            prop_assert!(dup.append(block, make(i, off, len, byte)));
            // Duplicate delivery of the same extent: rejected, not
            // double-journaled.
            prop_assert!(!dup.append(block, make(i, off, len, byte)));
        }
        prop_assert_eq!(once.entries_appended, dup.entries_appended);
        prop_assert_eq!(once.bytes_appended, dup.bytes_appended);

        let a = once.take(&block);
        let b = dup.take(&block);
        let mut buf_once = vec![0u8; 4096];
        let mut buf_dup = vec![0u8; 4096];
        DegradedJournal::apply_into(&a, &mut buf_once);
        DegradedJournal::apply_into(&b, &mut buf_dup);
        prop_assert_eq!(&buf_once, &buf_dup, "duplicates must not change the replay");

        // Replaying the same ordered entries again is a no-op.
        let snapshot = buf_once.clone();
        DegradedJournal::apply_into(&a, &mut buf_once);
        prop_assert_eq!(buf_once, snapshot, "replay is idempotent");
    }
}
