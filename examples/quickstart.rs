//! Quickstart: build a small TSUE cluster, update files, read them back,
//! kill a node, and recover — the whole public API in one tour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tsue_bench::default_registry;
use tsue_ecfs::{check_consistency, run_recovery, run_workload, Cluster, ClusterBuilder};
use tsue_sim::{Sim, SECOND};
use tsue_trace::ten_cloud;

fn main() {
    // An RS(4,2) cluster of 8 OSDs with four closed-loop clients, running
    // in materialized mode so we can verify every byte afterwards. The
    // scheme comes from the registry by name — swap "tsue" for any of
    // `tsuectl list`'s entries to tour a baseline instead.
    println!("building an RS(4,2) cluster with TSUE on every OSD...");
    let mut world = ClusterBuilder::ssd(4, 2, 4)
        .osds(8)
        .block_size(256 << 10)
        .file_size_per_client(4 << 20)
        .materialize(true)
        .record_arrivals(true)
        .workload(&ten_cloud())
        .scheme(&default_registry(), "tsue", serde::Value::Null)
        .expect("tsue is registered")
        .build();

    // Replay a Ten-Cloud-shaped update workload for two virtual seconds.
    let mut sim: Sim<Cluster> = Sim::new();
    let end = run_workload(&mut world, &mut sim, 2 * SECOND);
    println!(
        "workload done: {} ops completed, {:.0} IOPS, mean latency {:.0} us",
        world.core.metrics.ops_completed,
        world.core.metrics.iops(end),
        world.core.metrics.mean_latency() / 1000.0
    );

    // Drain the three-layer log pipeline, then prove the cluster state is
    // exactly what the update stream dictates.
    world.flush_all(&mut sim);
    let (blocks, stripes) = check_consistency(&world).expect("consistent end state");
    println!(
        "verified: {blocks} data blocks match the replay, {stripes} stripes parity-consistent"
    );

    // Storage/network cost of the run.
    let dev = world.device_stats();
    println!(
        "device totals: {} r/w ops, {} overwrites, {} flash erases (WA {:.2})",
        dev.total_ops(),
        dev.overwrite_ops,
        dev.erase_ops,
        dev.write_amplification()
    );
    println!(
        "network: {:.1} MiB payload moved",
        world.core.net.total_payload() as f64 / (1 << 20) as f64
    );

    // Kill a node and rebuild everything it hosted.
    println!("failing OSD 3 and recovering its blocks...");
    let report = run_recovery(&mut world, &mut sim, 3);
    println!(
        "recovered {} blocks ({} MiB) at {:.0} MB/s (log drain was {:.1}% of the window)",
        report.blocks_rebuilt,
        report.bytes_rebuilt >> 20,
        report.bandwidth() / 1e6,
        100.0 * report.flush_time as f64 / report.total_time.max(1) as f64
    );

    // The recovered cluster still verifies.
    check_consistency(&world).expect("consistent after recovery");
    println!("post-recovery consistency check passed ✔");
}
