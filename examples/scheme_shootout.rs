//! Scheme shootout: replay the same Ten-Cloud-shaped workload under every
//! update scheme (FO, FL, PL, PLR, PARIX, CoRD, TSUE) on the simulated
//! 16-node SSD cluster and compare throughput, latency, and device wear —
//! a miniature of the paper's Fig. 5 + Table 1.
//!
//! ```text
//! cargo run --release --example scheme_shootout
//! ```

use tsue_bench::{results_of, run_scenarios, ScenarioSpec, SchemeSpec, TraceKind};

fn main() {
    println!("replaying Ten-Cloud on RS(6,4), 16 clients, 1.5 virtual seconds per scheme...\n");
    let specs: Vec<ScenarioSpec> = ["fo", "fl", "pl", "plr", "parix", "cord", "tsue"]
        .into_iter()
        .map(|name| {
            let scheme = SchemeSpec::named(name);
            let mut s =
                ScenarioSpec::ssd(format!("shootout-{name}"), TraceKind::Ten, 6, 4, 16, scheme);
            s.duration_ms = Some(1_500);
            s
        })
        .collect();
    let results = results_of(&run_scenarios(specs).expect("shootout specs are valid"));

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "SCHEME", "IOPS", "LAT(us)", "RW_OPS", "OVERWRITES", "SEQ_FRAC"
    );
    let tsue = results
        .iter()
        .find(|r| r.scheme == "TSUE")
        .expect("TSUE ran")
        .clone();
    for r in &results {
        println!(
            "{:<8} {:>10.0} {:>10.1} {:>12} {:>12} {:>10.2}",
            r.scheme,
            r.iops,
            r.mean_latency_us,
            r.dev.rw_ops,
            r.dev.overwrite_ops,
            r.dev.seq_fraction
        );
    }
    println!();
    for r in &results {
        if r.scheme != "TSUE" {
            println!(
                "TSUE vs {:<6} {:>5.1}x the throughput, {:>5.1}x fewer overwrites",
                r.scheme,
                tsue.iops / r.iops.max(1.0),
                r.dev.overwrite_ops as f64 / tsue.dev.overwrite_ops.max(1) as f64
            );
        }
    }
}
