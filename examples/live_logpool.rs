//! The live (thread-based) TSUE log pool outside the simulator: four
//! producer threads hammer a hot working set; the recycler pool merges and
//! applies ranges to a backing store; the log doubles as a read cache.
//!
//! Demonstrates the embeddable form of the paper's §3.2 structure —
//! two-level coalescing index, FIFO unit lifecycle, per-key recycle
//! affinity — with real `parking_lot`/`crossbeam` concurrency.
//!
//! ```text
//! cargo run --release --example live_logpool
//! ```

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tsue_core::live::{LiveLogPool, LivePoolConfig, RecycleSink};

/// A "disk": one 64 KiB buffer per key, with a merge counter.
struct Store {
    blocks: Mutex<HashMap<u64, Vec<u8>>>,
    merges: std::sync::atomic::AtomicU64,
}

impl RecycleSink for Store {
    fn merge(&self, key: u64, off: u64, data: &[u8]) {
        let mut blocks = self.blocks.lock();
        let block = blocks.entry(key).or_insert_with(|| vec![0u8; 64 << 10]);
        block[off as usize..off as usize + data.len()].copy_from_slice(data);
        self.merges
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

fn main() {
    let store = Arc::new(Store {
        blocks: Mutex::new(HashMap::new()),
        merges: std::sync::atomic::AtomicU64::new(0),
    });
    let pool = Arc::new(LiveLogPool::new(
        LivePoolConfig {
            unit_size: 256 << 10,
            max_units: 4,
            workers: 2,
            max_outstanding: 2048,
        },
        Arc::clone(&store),
    ));

    // Four producers, each updating 8 hot 4 KiB slots of its own blocks
    // over and over — the spatio-temporal locality TSUE feeds on.
    let producers = 4u64;
    let writes_per_producer = 25_000u64;
    let start = std::time::Instant::now();
    let mut handles = Vec::new();
    for p in 0..producers {
        let pool = Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            for i in 0..writes_per_producer {
                let key = p * 4 + (i % 4);
                let slot = (i * 2654435761) % 8;
                let payload = vec![(i % 251) as u8; 4096];
                pool.append(key, slot * 4096, &payload);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    pool.flush();
    let elapsed = start.elapsed();

    let appended = pool.appended();
    let merged = pool.merged();
    println!(
        "{appended} appends from {producers} threads in {:.2}s ({:.0} appends/s)",
        elapsed.as_secs_f64(),
        appended as f64 / elapsed.as_secs_f64()
    );
    println!(
        "recyclers applied only {merged} merged ranges — locality folding absorbed {:.1}x",
        appended as f64 / merged.max(1) as f64
    );

    // Read-cache check: content still resident in retained units is served
    // without touching the store (units recycled longest ago may already
    // have been reused, dropping their cache role — both outcomes are
    // legitimate).
    let mut buf = vec![0u8; 4096];
    let hit = pool.read(0, 0, &mut buf);
    println!(
        "read of a hot slot served from the log cache: {}",
        if hit {
            "yes"
        } else {
            "no (unit already reused)"
        }
    );

    match Arc::try_unwrap(pool) {
        Ok(p) => p.shutdown(),
        Err(_) => unreachable!("all producers joined"),
    }
    println!(
        "store saw {} merges across {} blocks ✔",
        store.merges.load(std::sync::atomic::Ordering::Relaxed),
        store.blocks.lock().len()
    );
}
