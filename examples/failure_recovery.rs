//! Failure & recovery under different update schemes: how pending-log
//! drains gate reconstruction (the paper's §5.4 / Fig. 8b story).
//!
//! Runs the same update burst under PL (lazy threshold recycling) and TSUE
//! (real-time recycling), then kills a node: PL must first recycle a large
//! parity-log backlog before rebuilding can start, while TSUE's logs are
//! already drained — its recovery bandwidth approaches FO's log-free
//! ideal.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use tsue_bench::default_registry;
use tsue_ecfs::{run_recovery, run_workload, Cluster, ClusterBuilder, SchemeRegistry};
use tsue_sim::{Sim, SECOND};
use tsue_trace::ten_cloud;

fn run_case(registry: &SchemeRegistry, name: &str) {
    let display = registry.get(name).map(|e| e.display).unwrap_or(name);
    let mut world = ClusterBuilder::hdd(6, 2, 8)
        .file_size_per_client(6 << 20)
        .workload(&ten_cloud())
        .scheme(registry, name, serde::Value::Null)
        .expect("scheme is registered")
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 6 * SECOND);
    let backlog = world.total_scheme_backlog();
    let report = run_recovery(&mut world, &mut sim, 0);
    println!(
        "{display:<6} backlog at failure: {backlog:>6} items | log drain {:>6.2}s | \
         rebuild {:>4} blocks | recovery {:>7.1} MB/s",
        report.flush_time as f64 / 1e9,
        report.blocks_rebuilt,
        report.bandwidth() / 1e6,
    );
}

fn main() {
    println!(
        "update burst (6 virtual seconds, Ten-Cloud, RS(6,2), HDD cluster), then kill OSD 0:\n"
    );
    let registry = default_registry();
    run_case(&registry, "fo");
    run_case(&registry, "pl");
    run_case(&registry, "tsue");
    println!(
        "\nFO has no logs to drain; PL stalls recovery behind its parity-log backlog;\n\
         TSUE's real-time recycling leaves almost nothing pending — recovery ≈ FO."
    );
}
