//! Online failure & recovery under different update schemes: how
//! pending-log drains gate reconstruction (the paper's §5.4 / Fig. 8b
//! story), now with the failure landing *while clients keep writing* on a
//! rack-aware two-tier fabric.
//!
//! The same update stream runs under FO (no logs), PL (lazy threshold
//! recycling), and TSUE (real-time recycling); at 300 virtual ms a whole
//! rack dies. The fault engine drains each scheme's log storm, rebuilds
//! the lost blocks online (degraded reads keep flowing, rebuilt blocks
//! rehome), and reports recovery bandwidth plus the cross-rack traffic
//! split — PL stalls behind its recycle storm, TSUE recovers near FO
//! speed.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use tsue_repro::bench::default_registry;
use tsue_repro::ecfs::{run_workload, Cluster, ClusterBuilder, PlacementKind, SchemeRegistry};
use tsue_repro::fault::{install, run_plan_to_completion, EngineConfig, FaultEvent, FaultPlan};
use tsue_repro::net::Topology;
use tsue_repro::sim::{Sim, MILLISECOND};
use tsue_repro::trace::ten_cloud;

fn run_case(registry: &SchemeRegistry, name: &str) {
    let display = registry.get(name).map(|e| e.display).unwrap_or(name);
    let mut world = ClusterBuilder::hdd(4, 2, 8)
        .osds(16)
        .topology(Topology::rack4())
        .placement(PlacementKind::RackAware)
        .file_size_per_client(6 << 20)
        .workload(&ten_cloud())
        .scheme(registry, name, serde::Value::Null)
        .expect("scheme is registered")
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    let plan = FaultPlan::new(vec![FaultEvent::KillRack {
        at_ms: 300,
        rack: 1,
    }]);
    let tracker =
        install(&world, &mut sim, &plan, EngineConfig::default()).expect("plan fits the cluster");
    run_workload(&mut world, &mut sim, 900 * MILLISECOND);
    run_plan_to_completion(&mut world, &mut sim, &tracker);

    let report = tracker.borrow().report.clone();
    let p = &report.phases[0];
    println!(
        "{display:<6} backlog at failure: {:>5} items | drain {:>5.0} ms | \
         rebuild {:>2}/{:>2} blocks in {:>4.0} ms | recovery {:>6.1} MB/s | \
         degraded reads {:>3} | rebuild cross-rack {:>5.1} MB",
        p.backlog_at_failure,
        p.drain_ms,
        p.blocks_rebuilt,
        p.blocks_lost,
        p.rebuild_ms,
        p.recovery_mb_s,
        p.degraded_reads,
        report.rebuild_cross_bytes as f64 / 1e6,
    );
}

fn main() {
    println!(
        "online rack failure (Ten-Cloud updates, RS(4,2), 16 HDD OSDs in 4 racks,\n\
         rack-aware placement, 2:1 oversubscribed uplinks; rack 1 dies at 300 ms\n\
         while clients keep issuing):\n"
    );
    let registry = default_registry();
    run_case(&registry, "fo");
    run_case(&registry, "pl");
    run_case(&registry, "tsue");
    println!(
        "\nFO has no logs to drain; PL's drain gate stays shut while its parity-log\n\
         recycle storm competes with live traffic; TSUE's real-time recycling leaves\n\
         almost nothing pending — its online recovery bandwidth approaches FO's."
    );
}
