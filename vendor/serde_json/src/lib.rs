//! Offline stand-in for `serde_json`: prints the shim `serde` value tree
//! as (pretty) JSON.

pub use serde::Value;

use std::fmt::Write as _;

/// Serialization error.
///
/// The value-tree design cannot fail structurally; the only error case
/// is a non-finite float, which JSON cannot represent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
///
/// # Errors
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            // Keep a decimal point so the value round-trips as a float.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |out, v, d| {
                write_value(out, v, indent, d)
            })?
        }
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d)
            },
        )?,
    }
    Ok(())
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return Ok(());
    }
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        newline_indent(out, indent, depth + 1);
        write_item(out, item, depth + 1)?;
    }
    newline_indent(out, indent, depth);
    out.push(close);
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("tsue".into())),
            ("iops".into(), Value::Float(1234.5)),
            (
                "per_second".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("flush".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"tsue","iops":1234.5,"per_second":[1,2],"flush":null}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"tsue\""), "{pretty}");
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&Value::Str("a\"b\\c\nd".into())).unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn rejects_non_finite() {
        assert!(to_string(&Value::Float(f64::NAN)).is_err());
        assert!(to_string(&Value::Float(f64::INFINITY)).is_err());
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&Value::Float(3.0)).unwrap(), "3.0");
    }
}
