//! Offline stand-in for `serde_json`: prints the shim `serde` value tree
//! as (pretty) JSON and parses JSON text back into it.

pub use serde::Value;

use std::fmt::Write as _;

/// Parses JSON text into `T` via its [`serde::Deserialize`] impl.
///
/// # Errors
/// Fails on malformed JSON (with byte-offset context) or when the parsed
/// value tree does not match `T`'s shape.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = value_from_str(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
/// Fails on malformed JSON, reporting the byte offset of the problem.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Recursive-descent JSON parser over raw bytes (strings are re-checked
/// as UTF-8 on extraction).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("unpaired surrogate escape"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (1–4 bytes) verbatim.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

/// Serialization error.
///
/// The value-tree design cannot fail structurally; the only error case
/// is a non-finite float, which JSON cannot represent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
///
/// # Errors
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            // Keep a decimal point so the value round-trips as a float.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |out, v, d| {
                write_value(out, v, indent, d)
            })?
        }
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d)
            },
        )?,
    }
    Ok(())
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return Ok(());
    }
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        newline_indent(out, indent, depth + 1);
        write_item(out, item, depth + 1)?;
    }
    newline_indent(out, indent, depth);
    out.push(close);
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("tsue".into())),
            ("iops".into(), Value::Float(1234.5)),
            (
                "per_second".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("flush".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"tsue","iops":1234.5,"per_second":[1,2],"flush":null}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"tsue\""), "{pretty}");
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&Value::Str("a\"b\\c\nd".into())).unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn rejects_non_finite() {
        assert!(to_string(&Value::Float(f64::NAN)).is_err());
        assert!(to_string(&Value::Float(f64::INFINITY)).is_err());
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&Value::Float(3.0)).unwrap(), "3.0");
    }

    #[test]
    fn parses_every_value_shape() {
        let v: Value =
            from_str(r#"{"a": [1, -2, 3.5, true, false, null], "b": {"nested": "sA\n"}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![
                Value::UInt(1),
                Value::Int(-2),
                Value::Float(3.5),
                Value::Bool(true),
                Value::Bool(false),
                Value::Null,
            ]))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("nested")),
            Some(&Value::Str("sA\n".into()))
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(value_from_str("{").is_err());
        assert!(value_from_str("[1,]").is_err());
        assert!(value_from_str("1 2").is_err());
        assert!(value_from_str(r#"{"a": 1, "a": 2}"#).is_err(), "dup keys");
        assert!(value_from_str("nul").is_err());
    }

    #[test]
    fn print_parse_round_trips() {
        let v = Value::Object(vec![
            ("s".into(), Value::Str("q\"\\\u{1F600}".into())),
            ("n".into(), Value::Float(1.25)),
            ("i".into(), Value::Int(-7)),
            ("u".into(), Value::UInt(u64::MAX)),
            ("arr".into(), Value::Array(vec![Value::Null])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(value_from_str(&text).unwrap(), v);
    }

    #[test]
    fn typed_from_str_reports_shape_errors() {
        assert_eq!(from_str::<u64>("17").unwrap(), 17);
        assert!(from_str::<u64>("-1").is_err());
        assert_eq!(from_str::<Vec<f64>>("[1, 2.5]").unwrap(), vec![1.0, 2.5]);
        assert!(from_str::<String>("42").is_err());
    }
}
