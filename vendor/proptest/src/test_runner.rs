//! Case execution: configuration, error type, and the runner loop.

use crate::strategy::Strategy;
use rand::SeedableRng;

/// The RNG driving value generation.
#[derive(Clone, Debug)]
pub struct TestRng(rand::rngs::SmallRng);

impl TestRng {
    fn for_test(name: &str) -> Self {
        // Deterministic per test (name-hashed), overridable for replay
        // exploration via PROPTEST_SEED.
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x7353_5545_2025_0001); // "sSUE" 2025
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(rand::rngs::SmallRng::seed_from_u64(base ^ h))
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration (`proptest::test_runner::Config` subset).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        Config {
            cases,
            max_global_rejects: 1024,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected (`prop_assume!`); the case is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

/// Outcome of one case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `config.cases` generated cases of `strategy` through `test`,
/// panicking (with the offending input) on the first failure.
pub fn run_cases<S: Strategy>(
    config: &Config,
    test_name: &str,
    strategy: &S,
    mut test: impl FnMut(S::Value) -> TestCaseResult,
) {
    let mut rng = TestRng::for_test(test_name);
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        match test(value) {
            Ok(()) => case += 1,
            Err(TestCaseError::Fail(reason)) => panic!(
                "proptest: test '{test_name}' failed at case {case}/{}: {reason}\n\
                 input: {rendered}",
                config.cases
            ),
            Err(TestCaseError::Reject(reason)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest: test '{test_name}' rejected too many inputs ({rejects}): {reason}"
                );
            }
        }
    }
}
