//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the test RNG.
pub trait Strategy {
    /// The generated type; `Debug` so failures can print the input.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

impl Strategy for () {
    type Value = ();
    fn generate(&self, _rng: &mut TestRng) {}
}
