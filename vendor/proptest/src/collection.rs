//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of an element strategy's values.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
