//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of proptest the workspace's property suites
//! rely on: the `proptest!` macro (mixed `name: Type` / `pat in strategy`
//! parameters, optional `#![proptest_config(..)]`), integer/float range
//! strategies, `any::<T>()`, tuple strategies, `collection::vec`, and the
//! `prop_assert*` macros returning [`test_runner::TestCaseError`].
//!
//! Differences from real proptest, deliberately accepted for a hermetic
//! build:
//!
//! * **No shrinking** — a failing case panics with the generated input's
//!   `Debug` rendering instead of a minimized counterexample.
//! * **Deterministic seeding** — each test's RNG is seeded from a fixed
//!   constant (overridable via `PROPTEST_SEED`), so CI runs are
//!   replayable bit for bit; `PROPTEST_CASES` scales the case count.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a proptest case, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "{}\n  both: {:?}", format!($($fmt)*), left);
    }};
}

/// Rejects the current case (it is regenerated, not counted as failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` whose
/// parameters are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! {
                config = ($cfg);
                name = ($name);
                body = ($body);
                pats = ();
                strats = ();
                $($params)*
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: run the case.
    (config = ($cfg:expr);
     name = ($name:ident);
     body = ($body:block);
     pats = ($($pat:pat,)*);
     strats = ($($strat:expr,)*);
    ) => {
        $crate::test_runner::run_cases(
            &($cfg),
            stringify!($name),
            &($($strat,)*),
            |($($pat,)*)| {
                $body
                ::core::result::Result::Ok(())
            },
        );
    };
    // `pat in strategy` parameter, more to come.
    (config = ($cfg:expr);
     name = ($name:ident);
     body = ($body:block);
     pats = ($($pat:pat,)*);
     strats = ($($strat:expr,)*);
     $p:pat in $s:expr, $($rest:tt)*
    ) => {
        $crate::__proptest_case! {
            config = ($cfg);
            name = ($name);
            body = ($body);
            pats = ($($pat,)* $p,);
            strats = ($($strat,)* $s,);
            $($rest)*
        }
    };
    // `pat in strategy` as the final parameter.
    (config = ($cfg:expr);
     name = ($name:ident);
     body = ($body:block);
     pats = ($($pat:pat,)*);
     strats = ($($strat:expr,)*);
     $p:pat in $s:expr
    ) => {
        $crate::__proptest_case! {
            config = ($cfg);
            name = ($name);
            body = ($body);
            pats = ($($pat,)* $p,);
            strats = ($($strat,)* $s,);
        }
    };
    // `name: Type` parameter (drawn from `any::<Type>()`), more to come.
    (config = ($cfg:expr);
     name = ($name:ident);
     body = ($body:block);
     pats = ($($pat:pat,)*);
     strats = ($($strat:expr,)*);
     $p:ident : $t:ty, $($rest:tt)*
    ) => {
        $crate::__proptest_case! {
            config = ($cfg);
            name = ($name);
            body = ($body);
            pats = ($($pat,)* $p,);
            strats = ($($strat,)* $crate::arbitrary::any::<$t>(),);
            $($rest)*
        }
    };
    // `name: Type` as the final parameter.
    (config = ($cfg:expr);
     name = ($name:ident);
     body = ($body:block);
     pats = ($($pat:pat,)*);
     strats = ($($strat:expr,)*);
     $p:ident : $t:ty
    ) => {
        $crate::__proptest_case! {
            config = ($cfg);
            name = ($name);
            body = ($body);
            pats = ($($pat,)* $p,);
            strats = ($($strat,)* $crate::arbitrary::any::<$t>(),);
        }
    };
}
