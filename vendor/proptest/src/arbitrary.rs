//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64, f32);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.gen_range(0u8..8) != 0 {
            rng.gen_range(0x20u32..0x7F) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0u32..0xD800)).unwrap_or('\u{FFFD}')
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "any::<{}>()", std::any::type_name::<T>())
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
