//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable (no crates.io access), so the derive
//! parses the item declaration directly from the raw token stream. It
//! supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields, and
//! * enums whose variants are units or tuples.
//!
//! Generics and named-field enum variants are rejected with a
//! `compile_error!` rather than miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the shim `serde::Deserialize` (value-tree rebuilding).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    if !serialize {
        return expand_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses");
    }
    let body = match &item {
        Item::Struct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, arity)| match arity {
                    0 => format!(
                        "{name}::{variant} => serde::Value::Str(\"{variant}\".to_string()),"
                    ),
                    1 => format!(
                        "{name}::{variant}(f0) => serde::Value::Object(vec![\
                         (\"{variant}\".to_string(), serde::Serialize::to_value(f0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{variant}({}) => serde::Value::Object(vec![\
                             (\"{variant}\".to_string(), serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Generates a real `serde::Deserialize` impl: structs rebuild from an
/// object (missing fields fall back to `Deserialize::absent`, unknown
/// fields are rejected), enums from a variant-name string (unit) or a
/// single-key `{variant: payload}` object (tuple).
fn expand_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => {
            let known: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::de_field(entries, \"{name}\", \"{f}\")?,"))
                .collect();
            format!(
                "const KNOWN: &[&str] = &[{known}];\n\
                 let entries = match v {{\n\
                 \tserde::Value::Object(entries) => entries,\n\
                 \tother => return ::core::result::Result::Err(\
                 serde::DeError::mismatch(\"{name}\", \"object\", other)),\n\
                 }};\n\
                 for (key, _) in entries.iter() {{\n\
                 \tif !KNOWN.contains(&key.as_str()) {{\n\
                 \t\treturn ::core::result::Result::Err(\
                 serde::DeError::unknown_field(\"{name}\", key, KNOWN));\n\
                 \t}}\n\
                 }}\n\
                 ::core::result::Result::Ok({name} {{ {inits} }})",
                known = known.join(", "),
                inits = inits.join(" "),
            )
        }
        Item::Enum { name, variants } => {
            let known: Vec<String> = variants.iter().map(|(v, _)| format!("\"{v}\"")).collect();
            let units: Vec<&(String, usize)> = variants.iter().filter(|(_, a)| *a == 0).collect();
            let tuples: Vec<&(String, usize)> = variants.iter().filter(|(_, a)| *a > 0).collect();
            let unknown = format!(
                "::core::result::Result::Err(\
                 serde::DeError::unknown_variant(\"{name}\", tag, VARIANTS))"
            );
            let str_arm = if units.is_empty() {
                unknown.clone()
            } else {
                let arms: Vec<String> = units
                    .iter()
                    .map(|(v, _)| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v}),"))
                    .collect();
                format!("match tag.as_str() {{ {} _ => {unknown} }}", arms.join(" "))
            };
            let obj_arm = if tuples.is_empty() {
                format!("{{ let (tag, _inner) = &entries[0]; {unknown} }}")
            } else {
                let arms: Vec<String> = tuples
                    .iter()
                    .map(|(v, arity)| {
                        if *arity == 1 {
                            format!(
                                "\"{v}\" => ::core::result::Result::Ok({name}::{v}(\
                                 serde::Deserialize::from_value(inner)\
                                 .map_err(|e| e.in_field(\"{name}\", \"{v}\"))?,)),"
                            )
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "serde::Deserialize::from_value(&items[{i}])\
                                         .map_err(|e| e.in_field(\"{name}\", \"{v}\"))?,"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{v}\" => match inner {{\n\
                                 \tserde::Value::Array(items) if items.len() == {arity} => \
                                 ::core::result::Result::Ok({name}::{v}({elems})),\n\
                                 \tother => ::core::result::Result::Err(serde::DeError::mismatch(\
                                 \"{name}::{v}\", \"array of length {arity}\", other)),\n\
                                 }},",
                                elems = elems.join(" "),
                            )
                        }
                    })
                    .collect();
                format!(
                    "{{ let (tag, inner) = &entries[0]; \
                     match tag.as_str() {{ {} _ => {unknown} }} }}",
                    arms.join(" ")
                )
            };
            format!(
                "const VARIANTS: &[&str] = &[{known}];\n\
                 match v {{\n\
                 \tserde::Value::Str(tag) => {str_arm},\n\
                 \tserde::Value::Object(entries) if entries.len() == 1 => {obj_arm},\n\
                 \tother => ::core::result::Result::Err(serde::DeError::mismatch(\
                 \"{name}\", \"string or single-key object\", other)),\n\
                 }}",
                known = known.join(", "),
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         \tfn from_value(v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{\n\
         {body}\n\
         \t}}\n\
         }}"
    )
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!(\"serde shim derive: {msg}\");")
        .parse()
        .expect("compile_error parses")
}

/// Parses `[attrs] [vis] (struct|enum) Name { ... }` from the derive
/// input, rejecting shapes the shim cannot faithfully handle.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    // Scan past attributes and visibility to the struct/enum keyword.
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the [...] attribute group
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) if *id.to_string() == *"struct" || *id.to_string() == *"enum" => {
                kind = Some(id.to_string());
                break;
            }
            _ => return Err(format!("unexpected token before item keyword: {tt}")),
        }
    }
    let kind = kind.ok_or("no struct/enum keyword found")?;
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("generic type {name} is not supported"));
            }
            Some(_) => continue,
            None => return Err(format!("no braced body found for {name}")),
        }
    };
    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

/// Splits a brace-group body at top-level commas. Groups are atomic
/// token trees, so nested commas never leak.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().expect("chunk present").push(tt),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_commas(body) {
        let mut it = chunk.into_iter().peekable();
        let mut name: Option<String> = None;
        while let Some(tt) = it.next() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    it.next(); // attribute group
                }
                TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                TokenTree::Ident(id) => {
                    name = Some(id.to_string());
                    break;
                }
                other => return Err(format!("unexpected token in field: {other}")),
            }
        }
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("tuple or unit structs are not supported".into()),
        }
        fields.push(name.ok_or("field without a name")?);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    for chunk in split_commas(body) {
        let mut it = chunk.into_iter().peekable();
        let mut name: Option<String> = None;
        while let Some(tt) = it.next() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    it.next(); // attribute group
                }
                TokenTree::Ident(id) => {
                    name = Some(id.to_string());
                    break;
                }
                other => return Err(format!("unexpected token in variant: {other}")),
            }
        }
        let name = name.ok_or("variant without a name")?;
        let arity = match it.next() {
            None => 0,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Count top-level commas to get the tuple arity.
                split_commas(g.stream()).len()
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!("struct variant {name} is not supported"));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("discriminant on variant {name} is not supported"));
            }
            Some(other) => return Err(format!("unexpected token after variant {name}: {other}")),
        };
        variants.push((name, arity));
    }
    Ok(variants)
}
