//! Shared byte buffers for the zero-copy data plane.
//!
//! Offline stand-in for the `bytes` crate (the build environment has no
//! registry access), shaped for this workspace's hot path:
//!
//! * [`Bytes`] — an immutable, `Arc`-backed byte buffer with O(1)
//!   [`Bytes::clone`], [`Bytes::slice`], and [`Bytes::split_to`]. Cloning a
//!   payload to forward it over the simulated network or fold it into a log
//!   index bumps a refcount instead of copying bytes.
//! * [`BytesMut`] — a mutable build buffer that [`BytesMut::freeze`]s into a
//!   [`Bytes`] without copying.
//! * a thread-local **BufPool** — every `BytesMut` draws its backing `Vec`
//!   from a per-thread free list and the `Vec` returns there when the last
//!   `Bytes` referencing it drops, so steady-state traffic recycles a small
//!   working set instead of hitting the allocator per record.
//!
//! The pool keeps hit/miss statistics and the crate counts every *deep*
//! copy of payload bytes ([`count_copy`]); [`stats`]/[`take_stats`] expose
//! both so harnesses can report copies-per-op and pool hit rates
//! (`tsuectl bench`, `BENCH_*.json`).
//!
//! Everything is thread-local by design: each simulated cluster runs on one
//! OS thread, so no locks sit on the hot path and per-run statistics stay
//! isolated even when scenarios fan out across threads.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Largest buffer the pool retains; anything bigger goes back to the
/// allocator (keeps a runaway range from pinning memory forever).
const MAX_POOLED: usize = 8 << 20;
/// Free-list depth per size class.
const MAX_PER_CLASS: usize = 32;
/// Number of power-of-two size classes (2^0 .. 2^23 = 8 MiB).
const CLASSES: usize = 24;

/// Pool and copy statistics for the current thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufStats {
    /// `BytesMut` acquisitions served from the free list.
    pub pool_hits: u64,
    /// Acquisitions that had to allocate.
    pub pool_misses: u64,
    /// Buffers returned to the free list.
    pub recycled: u64,
    /// Deep copies of payload bytes (buffer-to-buffer duplication).
    pub deep_copies: u64,
    /// Total bytes moved by those deep copies.
    pub bytes_copied: u64,
}

impl BufStats {
    /// Pool hit rate in `[0, 1]`; 0 when nothing was requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Field-wise difference (`self - earlier`), for windowed accounting.
    pub fn since(&self, earlier: &BufStats) -> BufStats {
        BufStats {
            pool_hits: self.pool_hits - earlier.pool_hits,
            pool_misses: self.pool_misses - earlier.pool_misses,
            recycled: self.recycled - earlier.recycled,
            deep_copies: self.deep_copies - earlier.deep_copies,
            bytes_copied: self.bytes_copied - earlier.bytes_copied,
        }
    }
}

struct Pool {
    classes: Vec<Vec<Vec<u8>>>,
    stats: BufStats,
}

impl Pool {
    fn new() -> Self {
        Pool {
            classes: (0..CLASSES).map(|_| Vec::new()).collect(),
            stats: BufStats::default(),
        }
    }

    fn class_of(n: usize) -> usize {
        (n.max(1).next_power_of_two().trailing_zeros() as usize).min(CLASSES - 1)
    }

    fn get(&mut self, n: usize) -> Vec<u8> {
        // A buffer's class is derived from its capacity, so the exact class
        // (and the next one up, for near-boundary requests) always holds
        // buffers large enough.
        let cls = Self::class_of(n);
        for c in cls..(cls + 2).min(CLASSES) {
            if let Some(pos) = self.classes[c].iter().position(|v| v.capacity() >= n) {
                self.stats.pool_hits += 1;
                return self.classes[c].swap_remove(pos);
            }
        }
        self.stats.pool_misses += 1;
        Vec::with_capacity(n.max(1).next_power_of_two())
    }

    fn put(&mut self, v: Vec<u8>) {
        if v.capacity() == 0 || v.capacity() > MAX_POOLED {
            return;
        }
        let cls = Self::class_of(v.capacity());
        if self.classes[cls].len() < MAX_PER_CLASS {
            self.stats.recycled += 1;
            self.classes[cls].push(v);
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

/// Records a deep copy of `bytes` payload bytes in the thread's counters.
///
/// Called internally by every copying constructor; exposed so callers that
/// duplicate payloads outside this crate can keep the accounting honest.
pub fn count_copy(bytes: u64) {
    let _ = POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        p.stats.deep_copies += 1;
        p.stats.bytes_copied += bytes;
    });
}

/// Snapshot of the current thread's pool/copy statistics.
pub fn stats() -> BufStats {
    POOL.try_with(|p| p.borrow().stats).unwrap_or_default()
}

/// Resets the current thread's statistics to zero (the pool contents stay).
pub fn reset_stats() {
    let _ = POOL.try_with(|p| p.borrow_mut().stats = BufStats::default());
}

/// Returns the current statistics and resets them.
pub fn take_stats() -> BufStats {
    POOL.try_with(|p| std::mem::take(&mut p.borrow_mut().stats))
        .unwrap_or_default()
}

/// Drops every buffer held by this thread's free list (tests).
pub fn drain_pool() {
    let _ = POOL.try_with(|p| {
        for c in p.borrow_mut().classes.iter_mut() {
            c.clear();
        }
    });
}

/// Refcounted backing storage; returns its `Vec` to the thread pool when
/// the last reference drops.
struct Inner {
    buf: Vec<u8>,
    pooled: bool,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if self.pooled {
            let buf = std::mem::take(&mut self.buf);
            let _ = POOL.try_with(|p| p.borrow_mut().put(buf));
        }
    }
}

/// An immutable, refcounted byte buffer with O(1) clone/slice/split.
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<Inner>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            inner: Arc::new(Inner {
                buf: Vec::new(),
                pooled: false,
            }),
            off: 0,
            len: 0,
        }
    }

    /// Copies `src` into a pool-backed buffer (a counted deep copy).
    pub fn copy_from_slice(src: &[u8]) -> Self {
        BytesMut::copy_of(src).freeze()
    }

    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow the viewed bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.inner.buf[self.off..self.off + self.len]
    }

    /// O(1) sub-view of `rel..rel + len` (shares the backing buffer).
    ///
    /// # Panics
    /// Panics if the range exceeds the view.
    pub fn slice(&self, rel: usize, len: usize) -> Bytes {
        assert!(rel + len <= self.len, "slice out of range");
        Bytes {
            inner: Arc::clone(&self.inner),
            off: self.off + rel,
            len,
        }
    }

    /// Splits off and returns the first `n` bytes; `self` keeps the rest.
    /// O(1) — both views share the backing buffer.
    ///
    /// # Panics
    /// Panics if `n > len`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len, "split_to out of range");
        let head = self.slice(0, n);
        self.off += n;
        self.len -= n;
        head
    }

    /// Mutable access when this is the only reference to the backing
    /// buffer; `None` when shared (callers then copy-on-write).
    pub fn unique_mut(&mut self) -> Option<&mut [u8]> {
        let (off, len) = (self.off, self.len);
        Arc::get_mut(&mut self.inner).map(|i| &mut i.buf[off..off + len])
    }

    /// Extends this view over `next` **without copying** when `next` is the
    /// contiguous continuation of the same backing buffer; returns whether
    /// the zero-copy join applied.
    pub fn try_join(&mut self, next: &Bytes) -> bool {
        if Arc::ptr_eq(&self.inner, &next.inner) && self.off + self.len == next.off {
            self.len += next.len;
            true
        } else {
            false
        }
    }

    /// Appends a copy of `src` in place when this is the sole reference
    /// and the view ends at the backing buffer's end — `Vec` growth, so a
    /// run built by repeated appends costs amortized O(total), not
    /// O(run²). Returns whether the (counted) in-place append applied.
    pub fn try_extend_from_slice(&mut self, src: &[u8]) -> bool {
        let (off, len) = (self.off, self.len);
        match Arc::get_mut(&mut self.inner) {
            Some(inner) if off + len == inner.buf.len() => {
                inner.buf.extend_from_slice(src);
                self.len += src.len();
                count_copy(src.len() as u64);
                true
            }
            _ => false,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Bytes(len={}, refs={})",
            self.len,
            Arc::strong_count(&self.inner)
        )
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Adopts an existing allocation (no copy, not pool-backed on drop — the
/// `Vec` was never drawn from the pool, but it *is* retained by it once
/// every reference drops, seeding the free list).
impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        let len = buf.len();
        Bytes {
            inner: Arc::new(Inner { buf, pooled: true }),
            off: 0,
            len,
        }
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

/// Copies a borrowed slice (counted).
impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

/// A mutable build buffer drawing from (and returning to) the thread pool.
pub struct BytesMut {
    buf: Vec<u8>,
    /// Armed until `freeze` transfers ownership of the backing `Vec`.
    live: bool,
}

impl BytesMut {
    /// Acquires a buffer of exactly `n` bytes.
    ///
    /// Contents are unspecified when the pool serves a recycled buffer of
    /// sufficient length (callers about to overwrite every byte skip the
    /// zeroing); the grown region of a fresh or short buffer reads zero.
    pub fn take(n: usize) -> Self {
        let mut buf = POOL
            .try_with(|p| p.borrow_mut().get(n))
            .unwrap_or_else(|_| Vec::with_capacity(n));
        // Shrinking never zeroes; growing zero-extends.
        buf.resize(n, 0);
        BytesMut { buf, live: true }
    }

    /// Acquires a buffer of `n` bytes, all zero.
    pub fn zeroed(n: usize) -> Self {
        let mut m = Self::take(n);
        m.buf.fill(0);
        m
    }

    /// Copies `src` into a fresh buffer (a counted deep copy). One pool
    /// access covers both the acquisition and the copy accounting.
    pub fn copy_of(src: &[u8]) -> Self {
        let n = src.len();
        let mut buf = POOL
            .try_with(|p| {
                let mut p = p.borrow_mut();
                p.stats.deep_copies += 1;
                p.stats.bytes_copied += n as u64;
                p.get(n)
            })
            .unwrap_or_else(|_| Vec::with_capacity(n));
        buf.resize(n, 0);
        buf.copy_from_slice(src);
        BytesMut { buf, live: true }
    }

    /// Current length.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Resizes in place (growth zero-fills).
    pub fn resize(&mut self, n: usize) {
        self.buf.resize(n, 0);
    }

    /// Appends a copy of `src` (a counted deep copy).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
        count_copy(src.len() as u64);
    }

    /// Converts into an immutable [`Bytes`] without copying; the backing
    /// buffer returns to the pool when the last reference drops.
    pub fn freeze(mut self) -> Bytes {
        self.live = false;
        let buf = std::mem::take(&mut self.buf);
        let len = buf.len();
        Bytes {
            inner: Arc::new(Inner { buf, pooled: true }),
            off: 0,
            len,
        }
    }
}

impl Drop for BytesMut {
    fn drop(&mut self) {
        if self.live {
            let buf = std::mem::take(&mut self.buf);
            let _ = POOL.try_with(|p| p.borrow_mut().put(buf));
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for BytesMut {
    #[inline]
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut(len={})", self.buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let s = b.slice(8, 8);
        assert_eq!(s.as_slice(), &(8u8..16).collect::<Vec<u8>>()[..]);
        let mut rest = b.clone();
        let head = rest.split_to(4);
        assert_eq!(head.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(rest.len(), 28);
        assert_eq!(rest[0], 4);
        // All views share one allocation.
        assert!(Arc::ptr_eq(&b.inner, &s.inner));
    }

    #[test]
    fn clone_is_refcount_only() {
        reset_stats();
        let b = Bytes::from(vec![7u8; 4096]);
        let clones: Vec<Bytes> = (0..64).map(|_| b.clone()).collect();
        assert_eq!(stats().deep_copies, 0, "clones must not copy");
        assert!(clones.iter().all(|c| c.as_slice() == b.as_slice()));
    }

    #[test]
    fn unique_mut_respects_sharing() {
        let mut b = Bytes::from(vec![1u8; 8]);
        assert!(b.unique_mut().is_some(), "sole owner gets mutable access");
        let c = b.clone();
        assert!(b.unique_mut().is_none(), "shared buffer must not mutate");
        drop(c);
        b.unique_mut().unwrap()[0] = 9;
        assert_eq!(b[0], 9);
    }

    #[test]
    fn try_join_is_zero_copy_for_contiguous_slices() {
        reset_stats();
        let whole = Bytes::from((0u8..16).collect::<Vec<u8>>());
        let mut a = whole.slice(0, 8);
        let b = whole.slice(8, 8);
        assert!(a.try_join(&b));
        assert_eq!(a.as_slice(), whole.as_slice());
        assert_eq!(stats().deep_copies, 0);
        // Non-contiguous or foreign buffers refuse.
        let mut x = whole.slice(0, 4);
        assert!(!x.try_join(&whole.slice(8, 4)));
        assert!(!x.try_join(&Bytes::from(vec![0u8; 4])));
    }

    #[test]
    fn try_extend_grows_unique_runs_in_place() {
        reset_stats();
        let mut run = Bytes::from(vec![1u8; 8]);
        assert!(run.try_extend_from_slice(&[2u8; 8]));
        assert_eq!(run.len(), 16);
        assert_eq!(&run[8..], &[2u8; 8]);
        let s = stats();
        assert_eq!((s.deep_copies, s.bytes_copied), (1, 8), "new bytes only");
        // Shared buffers refuse (copy-on-write is the caller's problem)…
        let held = run.clone();
        assert!(!run.try_extend_from_slice(&[3u8; 4]));
        drop(held);
        // …as do views that stop short of the buffer end.
        let mut head = run.slice(0, 4);
        drop(run);
        assert!(!head.try_extend_from_slice(&[3u8; 4]));
    }

    #[test]
    fn pool_recycles_frozen_buffers() {
        drain_pool();
        reset_stats();
        let m = BytesMut::take(4096);
        assert_eq!(stats().pool_misses, 1);
        let b = m.freeze();
        drop(b); // returns the Vec to the pool
        assert_eq!(stats().recycled, 1);
        let _m2 = BytesMut::take(4000); // same size class
        let s = stats();
        assert_eq!(s.pool_hits, 1, "second take must hit the free list");
        assert_eq!(s.pool_misses, 1);
    }

    #[test]
    fn pooled_reuse_skips_zeroing_but_fresh_growth_is_zero() {
        drain_pool();
        let mut m = BytesMut::take(64);
        m.as_mut().fill(0xAA);
        drop(m.freeze());
        // Recycled buffer: contents unspecified — but a *grown* region of a
        // short recycled buffer must read zero.
        let m2 = BytesMut::take(128);
        assert_eq!(m2.len(), 128);
        assert!(m2[64..].iter().all(|&x| x == 0));
        let z = BytesMut::zeroed(64);
        assert!(z.iter().all(|&x| x == 0));
    }

    #[test]
    fn copies_are_counted() {
        reset_stats();
        let b = Bytes::copy_from_slice(&[1u8; 100]);
        let _c = BytesMut::copy_of(&b);
        let s = stats();
        assert_eq!(s.deep_copies, 2);
        assert_eq!(s.bytes_copied, 200);
        let d = take_stats();
        assert_eq!(d.deep_copies, 2);
        assert_eq!(stats(), BufStats::default());
    }

    #[test]
    fn stats_since_and_hit_rate() {
        let a = BufStats {
            pool_hits: 3,
            pool_misses: 1,
            recycled: 2,
            deep_copies: 5,
            bytes_copied: 500,
        };
        let b = BufStats {
            pool_hits: 7,
            pool_misses: 1,
            recycled: 4,
            deep_copies: 5,
            bytes_copied: 500,
        };
        let d = b.since(&a);
        assert_eq!(d.pool_hits, 4);
        assert_eq!(d.deep_copies, 0);
        assert!((b.hit_rate() - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(BufStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        drain_pool();
        reset_stats();
        let m = BytesMut::take(MAX_POOLED * 2);
        drop(m);
        assert_eq!(stats().recycled, 0, "oversized buffer must not pool");
    }
}
