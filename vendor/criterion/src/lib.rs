//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the `micro_codec` bench uses —
//! `criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group` + `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `iter`/`iter_with_setup`, `black_box` — on a simple wall-clock loop:
//! a short calibration pass sizes the iteration count, a timed pass
//! reports mean time per iteration (and derived throughput).
//!
//! No statistics, plots, or saved baselines; output is one line per
//! benchmark, which is all the CI compile-and-smoke gate needs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by a run.
#[derive(Clone, Copy, Debug)]
struct Settings {
    /// Target wall time for the measured pass.
    measure_for: Duration,
    /// `--test` smoke mode: run every benchmark body exactly once and skip
    /// measurement (mirrors real criterion's `cargo bench -- --test`).
    test_mode: bool,
}

impl Settings {
    fn from_env() -> Self {
        // TSUE_BENCH_MS trims bench time (CI smoke runs set it low).
        let ms = std::env::var("TSUE_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(500u64);
        Settings {
            measure_for: Duration::from_millis(ms),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_env(),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, None, self.settings, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            settings: self.settings,
            _criterion: self,
        }
    }
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks (stand-in for
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.throughput, self.settings, &mut f);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(
            &full,
            self.throughput,
            self.settings,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, running `setup` outside the clock each
    /// iteration.
    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench(
    id: &str,
    throughput: Option<Throughput>,
    settings: Settings,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration: run once to estimate per-iteration cost.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    if settings.test_mode {
        println!("bench {id:<40} ok (--test: one iteration)");
        return;
    }
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let iters = (settings.measure_for.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    // Measured pass.
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / mean / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>10.0} elem/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "bench {id:<40} {:>12.3} us/iter  ({iters} iters){rate}",
        mean * 1e6
    );
}

/// Declares a group function running each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
