//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics: locks
//! return guards directly (no `Result`), poisoning is transparently
//! ignored (a poisoned lock keeps working, matching `parking_lot`'s
//! behavior of not poisoning at all), and `Condvar::wait*` borrows the
//! guard mutably instead of consuming it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait*` can temporarily take ownership of the
    // inner std guard (std's wait consumes it); always `Some` outside
    // those calls.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed wait, mirroring `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 7 {
            cv.wait_for(&mut g, Duration::from_millis(5));
        }
        assert_eq!(*g, 7);
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
