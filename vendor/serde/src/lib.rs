//! Offline stand-in for `serde`.
//!
//! Real serde is a zero-copy serializer framework; this shim collapses
//! it to a value tree: [`Serialize`] renders `self` into a [`Value`],
//! which `serde_json` then prints, and [`Deserialize`] rebuilds `Self`
//! from a [`Value`] that `serde_json` parsed. That is exactly the
//! surface the experiment harness needs (derive + `to_string_pretty` +
//! `from_str` for scenario files), with no external dependencies.
//!
//! Divergences from real serde, deliberately accepted:
//!
//! * Unknown object fields are **rejected** during deserialization
//!   (real serde ignores them unless `deny_unknown_fields` is set).
//!   Scenario files are written by hand; a typo'd knob must fail loudly
//!   rather than silently fall back to a default.
//! * Missing fields error unless the target field is an `Option`
//!   (which deserializes as `None`, mirroring `#[serde(default)]`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Key-ordered object (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// One-word description of the value's JSON type (error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up `key` in an object value; `None` for absent keys or
    /// non-object values.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    /// Returns [`DeError`] when the value's shape or type does not match
    /// `Self` (wrong JSON type, missing/unknown field, unknown variant).
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field of this type is absent from
    /// the serialized object. `None` (the default) makes absence an
    /// error; `Option<T>` overrides this to deserialize as `None`.
    fn absent() -> Option<Self> {
        None
    }
}

/// Deserialization error: a message plus a coarse `where` breadcrumb.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// A free-form error message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// "expected X, found Y" for a mismatched value shape.
    pub fn mismatch(ty: &str, expected: &str, found: &Value) -> Self {
        DeError(format!("{ty}: expected {expected}, found {}", found.kind()))
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("{ty}: missing field `{field}`"))
    }

    /// An object carried a field the target type does not define.
    pub fn unknown_field(ty: &str, field: &str, known: &[&str]) -> Self {
        DeError(format!(
            "{ty}: unknown field `{field}` (expected one of: {})",
            known.join(", ")
        ))
    }

    /// An enum tag did not name any variant.
    pub fn unknown_variant(ty: &str, tag: &str, known: &[&str]) -> Self {
        DeError(format!(
            "{ty}: unknown variant `{tag}` (expected one of: {})",
            known.join(", ")
        ))
    }

    /// Wraps the error with the field it occurred under.
    pub fn in_field(self, ty: &str, field: &str) -> Self {
        DeError(format!("{ty}.{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Derive helper: deserializes struct field `field` of `ty` from the
/// object entries, falling back to [`Deserialize::absent`] when missing.
pub fn de_field<T: Deserialize>(
    entries: &[(String, Value)],
    ty: &str,
    field: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == field) {
        Some((_, v)) => T::from_value(v).map_err(|e| e.in_field(ty, field)),
        None => T::absent().ok_or_else(|| DeError::missing_field(ty, field)),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(DeError::mismatch(
                            stringify!($t),
                            "non-negative integer",
                            other,
                        ))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(format!("{n} overflows {}", stringify!($t))))
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} overflows i64")))?,
                    other => return Err(DeError::mismatch(stringify!($t), "integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(format!("{n} overflows {}", stringify!($t))))
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::mismatch("f64", "number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", "bool", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("String", "string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("Vec", "array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::mismatch("BTreeMap", "object", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::mismatch("HashMap", "object", other)),
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($len:literal ; $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::mismatch(
                        "tuple",
                        concat!("array of length ", $len),
                        other,
                    )),
                }
            }
        }
    };
}

impl_serialize_tuple!(1 ; A: 0);
impl_serialize_tuple!(2 ; A: 0, B: 1);
impl_serialize_tuple!(3 ; A: 0, B: 1, C: 2);
impl_serialize_tuple!(4 ; A: 0, B: 1, C: 2, D: 3);
impl_serialize_tuple!(5 ; A: 0, B: 1, C: 2, D: 3, E: 4);
impl_serialize_tuple!(6 ; A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
