//! Offline stand-in for `serde`.
//!
//! Real serde is a zero-copy serializer framework; this shim collapses
//! it to a value tree: [`Serialize`] renders `self` into a [`Value`],
//! which `serde_json` then prints. That is exactly the surface the
//! experiment harness needs (derive + `to_string_pretty`), with no
//! external dependencies.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Key-ordered object (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Marker trait accepted by `#[derive(Deserialize)]`.
///
/// The workspace only ever writes results (never reads them back), so
/// deserialization is intentionally not implemented.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
