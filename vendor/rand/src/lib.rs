//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` it actually uses: seedable RNGs
//! (`SmallRng`, `StdRng`), uniform sampling over integer/float ranges,
//! `gen`, `gen_bool`, and `gen_range`. Both RNGs are xoshiro256++
//! generators seeded through SplitMix64 — deterministic per seed, with
//! statistical quality far beyond what the simulator's workload
//! generators and tests require.

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a seed, mirroring
/// `rand::SeedableRng`'s `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the `rand::Rng` extension trait.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of any [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Standard-distribution sampling for primitive types.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that support uniform single-value sampling, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen::<f32>() * (self.end - self.start)
    }
}

/// xoshiro256++ core shared by both RNG front ends.
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng, Xoshiro256};

    /// Small, fast RNG (stand-in for `rand::rngs::SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Default RNG (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Domain-separate from SmallRng so the two streams differ.
            StdRng(Xoshiro256::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F))
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(42);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "gen_bool(0.3) -> {frac}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
