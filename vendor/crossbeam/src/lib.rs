//! Offline stand-in for `crossbeam`, covering the `channel` module
//! surface this workspace uses: `unbounded()`, cloneable senders, and
//! receivers that iterate until every sender is dropped.

/// Multi-producer channels (stand-in for `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned when the receiving side has disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like crossbeam, the payload is elided so `Debug` (and therefore
    // `Result::expect`) works for any `T`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    ///
    /// Unlike `std::sync::mpsc`, crossbeam receivers are cloneable
    /// (multi-consumer); this shim recovers that with a shared mutex,
    /// which is ample for the recycler-pool fan-in pattern used here.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Returns an iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Borrowing iterator over received messages.
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// Owning iterator over received messages.
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self)
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn iteration_ends_when_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop(tx);
            drop(tx2);
            let got: Vec<u32> = rx.into_iter().collect();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
