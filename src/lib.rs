//! # tsue-repro — umbrella crate
//!
//! Re-exports the whole TSUE reproduction workspace under one roof so the
//! root-level `examples/` and `tests/` can exercise the system end to end.
//!
//! Layering (bottom-up):
//!
//! * [`gf`] / [`ec`] — GF(2^8) algebra and the systematic Reed–Solomon
//!   codec with the paper's incremental-update equations.
//! * [`buf`] — shared byte buffers (`Bytes`/`BytesMut`) and the recycling
//!   buffer pool behind the zero-copy data plane.
//! * [`sim`] — deterministic discrete-event kernel (virtual time).
//! * [`device`] / [`net`] — SSD (FTL + wear) / HDD and network fabric
//!   models that substitute for the paper's Chameleon testbed.
//! * [`trace`] — synthetic Ali-Cloud / Ten-Cloud / MSR workload generators.
//! * [`integrity`] — block checksums, torn-record framing, and the typed
//!   corruption errors behind the scrub/power-loss machinery.
//! * [`obs`] — observability: latency histograms per op class and
//!   pipeline stage, op-lifecycle span tracing (Chrome `trace_event`
//!   export), and per-node/per-rack time-series metric families.
//! * [`ecfs`] — the erasure-coded cluster file system (MDS, OSD, Client).
//! * [`fault`] — scripted fault injection (node/rack kills, stragglers,
//!   heals) driving online recovery under load.
//! * [`schemes`] — baseline update schemes: FO, FL, PL, PLR, PARIX, CoRD.
//! * [`core`] — **TSUE itself**: two-stage update with the three-layer,
//!   real-time-recycled log-pool structure.
//! * [`mod@bench`] — the experiment harness regenerating every paper figure
//!   and table.

pub use tsue_bench as bench;
pub use tsue_buf as buf;
pub use tsue_core as core;
pub use tsue_device as device;
pub use tsue_ec as ec;
pub use tsue_ecfs as ecfs;
pub use tsue_fault as fault;
pub use tsue_gf as gf;
pub use tsue_integrity as integrity;
pub use tsue_net as net;
pub use tsue_obs as obs;
pub use tsue_schemes as schemes;
pub use tsue_sim as sim;
pub use tsue_trace as trace;
